"""GPU device engine: streams, occupancy-gated admission, contention.

Execution model
---------------
Kernels are launched onto *streams* (CUDA-stream analogues). Within a
stream kernels execute in FIFO order; across streams the device admits a
kernel whenever the **sum of occupancies** of resident kernels stays at
or below 1.0 — exactly the behaviour the paper's occupancy-calculator
analysis describes: tuned cuDNN kernels demand (nearly) the whole device
and therefore serialize, while small elementwise kernels can overlap.

While ``k`` kernels are co-resident, each progresses at rate
``1 / (1 + beta * occ_others)`` — co-running is possible but prolongs
everyone (the Figure 2 observation: ~2x slowdown per model when two
ResNet50s share a V100).

The engine is fully event-driven: progress is integrated lazily on every
admission/completion, and a versioned timer wakes the device at the next
completion time.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.hw.kernels import KernelLaunch
from repro.hw.memory import MemoryPool
from repro.hw.specs import GpuSpec
from repro.sim.events import Event
from repro.sim.trace import OpenSpan, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

_EPSILON = 1e-9


class _StreamState:
    """FIFO launch queue for one stream; at most one admitted kernel."""

    __slots__ = ("queue", "busy")

    def __init__(self) -> None:
        self.queue: Deque[Tuple[KernelLaunch, Event]] = deque()
        self.busy = False


class _ResidentKernel:
    """A kernel currently executing on the device."""

    __slots__ = ("kernel", "done", "remaining_ms", "rate", "span",
                 "stream_key")

    def __init__(self, kernel: KernelLaunch, done: Event,
                 span: Optional[OpenSpan],
                 stream_key: Tuple[str, int]) -> None:
        self.kernel = kernel
        self.done = done
        self.remaining_ms = kernel.work_ms
        self.rate = 1.0
        self.span = span
        self.stream_key = stream_key


class GpuDevice:
    """One simulated GPU."""

    def __init__(self, engine: "Engine", spec: GpuSpec,
                 tracer: Optional[Tracer] = None,
                 name: Optional[str] = None) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name or spec.name
        self.tracer = tracer
        self.memory = MemoryPool(self.name, spec.memory_bytes)
        self._streams: Dict[Tuple[str, int], _StreamState] = {}
        self._running: List[_ResidentKernel] = []
        self._last_update = engine.now
        self._timer_version = 0
        self._last_context: Optional[str] = None
        self.kernels_completed = 0
        self.context_switches = 0
        # Device-busy accounting (any resident kernel counts): the
        # whole-run busy fraction the observability layer reports.
        self.busy_ms_total = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def lane(self) -> str:
        return f"gpu:{self.name}"

    def launch(self, kernel: KernelLaunch) -> Event:
        """Enqueue ``kernel`` on its (context, stream); returns completion.

        The completion event fires with the kernel itself once execution
        finishes. A queued-but-unadmitted kernel can be revoked with
        :meth:`cancel_queued`.
        """
        done = self.engine.event()
        key = (kernel.context, kernel.stream)
        state = self._streams.setdefault(key, _StreamState())
        state.queue.append((kernel, done))
        self._admit_and_reschedule()
        return done

    def cancel_queued(self, context: str) -> List[KernelLaunch]:
        """Drop every queued (not yet executing) kernel of ``context``.

        Executing kernels are left to drain — the paper's preemption
        design cannot selectively stop dispatched kernels either.
        Returns the cancelled kernels; their completion events fail with
        :class:`repro.sim.errors.EventCancelled` (pre-defused).
        """
        from repro.sim.errors import EventCancelled

        cancelled: List[KernelLaunch] = []
        for (ctx, _stream), state in self._streams.items():
            if ctx != context:
                continue
            while state.queue:
                kernel, done = state.queue.popleft()
                cancelled.append(kernel)
                done.fail(EventCancelled("preempted"))
                done.defused()
        if cancelled:
            self._admit_and_reschedule()
        return cancelled

    def outstanding(self, context: Optional[str] = None) -> int:
        """Number of kernels executing or queued (optionally per context)."""
        count = 0
        for resident in self._running:
            if context is None or resident.kernel.context == context:
                count += 1
        for (ctx, _stream), state in self._streams.items():
            if context is None or ctx == context:
                count += len(state.queue)
        return count

    def drain(self, context: str) -> Event:
        """Event that fires once ``context`` has no resident kernels.

        Queued kernels should be cancelled first (see
        :meth:`cancel_queued`); this waits only for the in-flight ones —
        the critical-path component of SwitchFlow's preemption latency.
        """
        done = self.engine.event()
        residents = [r.done for r in self._running
                     if r.kernel.context == context]
        if not residents:
            done.succeed()
            return done

        barrier = self.engine.all_of(residents)

        def _finish(_event: Event) -> None:
            if not done.triggered:
                done.succeed()

        barrier.callbacks.append(_finish)
        return done

    @property
    def resident_contexts(self) -> List[str]:
        seen: Dict[str, None] = {}
        for resident in self._running:
            seen.setdefault(resident.kernel.context, None)
        return list(seen)

    @property
    def total_occupancy(self) -> float:
        return sum(r.kernel.occupancy for r in self._running)

    # ------------------------------------------------------------------
    # Engine internals
    # ------------------------------------------------------------------
    def _sync_progress(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            if self._running:
                self.busy_ms_total += elapsed
            for resident in self._running:
                resident.remaining_ms -= elapsed * resident.rate
        self._last_update = now

    def busy_ms_until(self, now: Optional[float] = None) -> float:
        """Total device-busy ms so far, including the in-flight stretch."""
        if now is None:
            now = self.engine.now
        busy = self.busy_ms_total
        if self._running and now > self._last_update:
            busy += now - self._last_update
        return busy

    def _recompute_rates(self) -> None:
        beta = self.spec.contention_beta
        total = self.total_occupancy
        multi_context = len(self.resident_contexts) > 1
        for resident in self._running:
            others = total - resident.kernel.occupancy
            slowdown = 1.0 + beta * others
            if multi_context:
                # Cross-context sharing thrashes caches harder than
                # same-context stream parallelism.
                slowdown *= 1.0 + 0.5 * beta * others
            resident.rate = 1.0 / slowdown

    def _admit_and_reschedule(self) -> None:
        self._sync_progress()
        admitted = True
        while admitted:
            admitted = False
            # Hardware work queues are served in kernel-launch order
            # (with bypass: a younger kernel that fits may start while
            # an older one waits for resources).
            heads = sorted(
                ((state.queue[0][0].launch_id, key, state)
                 for key, state in self._streams.items()
                 if not state.busy and state.queue),
                key=lambda entry: entry[0])
            for _launch_id, key, state in heads:
                kernel, done = state.queue[0]
                if self.total_occupancy + kernel.occupancy > 1.0 + _EPSILON:
                    continue
                state.queue.popleft()
                state.busy = True
                kernel.started_at = self.engine.now
                span = None
                if self.tracer is not None:
                    span = self.tracer.begin(
                        self.lane, kernel.name, context=kernel.context,
                        stream=kernel.stream, occupancy=kernel.occupancy)
                resident = _ResidentKernel(kernel, done, span, key)
                if (self._last_context is not None
                        and kernel.context != self._last_context):
                    # Alternating contexts refill caches/TLBs.
                    resident.remaining_ms += \
                        self.spec.context_switch_overhead_ms
                    self.context_switches += 1
                self._last_context = kernel.context
                self._running.append(resident)
                admitted = True
        self._recompute_rates()
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._timer_version += 1
        if not self._running:
            return
        version = self._timer_version
        horizon = min(
            max(r.remaining_ms, 0.0) / r.rate for r in self._running)
        timer = self.engine.timeout(horizon)
        timer.callbacks.append(lambda _event: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a later admission/completion
        self._sync_progress()
        finished = [r for r in self._running
                    if r.remaining_ms <= _EPSILON * max(1.0, r.kernel.work_ms)]
        if not finished:
            self._arm_timer()
            return
        self._running = [r for r in self._running if r not in finished]
        for resident in finished:
            resident.kernel.finished_at = self.engine.now
            if resident.span is not None:
                resident.span.close()
            stream = self._streams.get(resident.stream_key)
            if stream is not None:
                stream.busy = False
            self.kernels_completed += 1
        # Admit successors before delivering completions so the device
        # never goes idle when work is queued.
        self._admit_and_reschedule()
        for resident in finished:
            if not resident.done.triggered:
                resident.done.succeed(resident.kernel)
