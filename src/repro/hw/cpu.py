"""Host CPU device: a pool of cores executing costed work items.

Thread-pool *workers* (see :mod:`repro.runtime.threadpool`) are simulated
processes; to actually burn CPU time they check a core out of this device
for the duration of each op. With as many workers as cores (the paper's
configuration) the core pool only contends when two pools coexist — the
global pool plus SwitchFlow's temporary pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hw.memory import MemoryPool
from repro.hw.specs import CpuSpec
from repro.sim.resources import Semaphore
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

GiB = 1024 ** 3


class CpuDevice:
    """One simulated host CPU (all sockets pooled).

    Two scheduling classes approximate OS scheduling between TF's
    runtime threads and tf.data's bulk decode threads:

    * *runtime* work (executor dispatch, send/recv, compute ops) takes
      any core and is served ahead of queued data work;
    * *data* work (long preprocessing chunks) is additionally capped a
      few cores below the machine, so microsecond-scale runtime tasks
      always find a core instead of queueing behind 80 ms decodes.

    A single job's pipeline (its per-job data pool, `data_workers`
    threads) fits under the cap, so one co-located latency-critical
    decode never waits; two saturating pipelines contend — which is
    the Figure 8-10 CPU fight.
    """

    #: Core-semaphore priorities (lower is served first).
    RUNTIME_PRIORITY = 0
    DATA_PRIORITY = 1

    def __init__(self, engine: "Engine", spec: CpuSpec,
                 tracer: Optional[Tracer] = None,
                 name: Optional[str] = None,
                 host_memory_bytes: int = 256 * GiB) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name or spec.name
        self.tracer = tracer
        self.cores = Semaphore(engine, spec.cores)
        reserve = 1 if spec.cores <= 4 else 3
        self.data_slots = Semaphore(engine, max(1, spec.cores - reserve))
        self.memory = MemoryPool(f"{self.name}-dram", host_memory_bytes)
        self.ops_completed = 0

    @property
    def lane(self) -> str:
        return f"cpu:{self.name}"

    def execute(self, cost_ms: float, label: str = "cpu-op",
                context: str = "-", data: bool = False):
        """Process generator: occupy one core for ``cost_ms``.

        ``data=True`` marks bulk preprocessing work, which yields the
        queue to runtime tasks. Usage from a worker::

            yield from cpu.execute(3.5, label="decode", context=job)
        """
        if cost_ms < 0:
            raise ValueError(f"negative CPU cost: {cost_ms}")
        if data:
            yield self.data_slots.acquire()
        yield self.cores.acquire(
            priority=self.DATA_PRIORITY if data
            else self.RUNTIME_PRIORITY)
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(self.lane, label, context=context)
        try:
            yield self.engine.timeout(cost_ms)
        finally:
            if span is not None:
                span.close()
            self.cores.release()
            if data:
                self.data_slots.release()
            self.ops_completed += 1

    def flops_cost_ms(self, flops: float, efficiency: float = 0.5) -> float:
        """Time for ``flops`` of dense math on ONE core."""
        if flops < 0:
            raise ValueError("flops cannot be negative")
        return flops / (self.spec.per_core_flops_per_ms * efficiency)
