"""Machine topology: devices plus the links between them.

Provides builders for the paper's three testbeds (Section 5.1):

* ``two_gpu_server()``  — dual-Xeon host, GTX 1080 Ti + RTX 2080 Ti
* ``v100_server(n)``    — dual-Xeon host, up to 4 Tesla V100s
* ``jetson_tx2()``      — quad-core ARM + integrated Pascal GPU
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.pcie import Link
from repro.hw.specs import (
    GTX_1080_TI,
    JETSON_TX2_GPU,
    PCIE3_X16,
    RTX_2080_TI,
    TESLA_V100,
    TX2_ARM_A57,
    TX2_SHARED_MEM,
    XEON_DUAL_18C,
    CpuSpec,
    GpuSpec,
    LinkSpec,
)
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

Device = Union[CpuDevice, GpuDevice]


class Machine:
    """A host with one CPU device and zero or more GPUs, fully linked."""

    def __init__(self, engine: "Engine", cpu_spec: CpuSpec,
                 tracer: Optional[Tracer] = None,
                 link_spec: LinkSpec = PCIE3_X16) -> None:
        self.engine = engine
        self.tracer = tracer if tracer is not None else Tracer(engine)
        self.link_spec = link_spec
        self.cpu = CpuDevice(engine, cpu_spec, tracer=self.tracer)
        self.gpus: List[GpuDevice] = []
        self._links: Dict[tuple, Link] = {}
        # Name-keyed device index: device() sits on the migration and
        # fault-scope hot paths, where a linear scan is measurable.
        self._devices: Dict[str, Device] = {self.cpu.name: self.cpu}
        self._routes: Dict[tuple, "Route"] = {}
        # Fault injector, if one is attached to the owning RunContext.
        # Mirrored here so layers that only hold a Machine (executor,
        # resource manager) reach their hooks without new plumbing.
        self.faults = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gpu(self, spec: GpuSpec, name: Optional[str] = None) -> GpuDevice:
        """Attach a GPU and create links to the host and every other GPU."""
        if name is None:
            same = sum(1 for g in self.gpus if g.spec.name == spec.name)
            name = spec.name if same == 0 else f"{spec.name} #{same}"
        gpu = GpuDevice(self.engine, spec, tracer=self.tracer, name=name)
        for endpoint in [self.cpu.name] + [g.name for g in self.gpus]:
            self._add_link_pair(endpoint, gpu.name)
        self.gpus.append(gpu)
        self._devices[gpu.name] = gpu
        return gpu

    def _add_link_pair(self, a: str, b: str) -> None:
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                self.engine, self.link_spec, src, dst, tracer=self.tracer)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[Device]:
        return [self.cpu] + list(self.gpus)

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"no device named {name!r}; have "
                           f"{[d.name for d in self.devices]}") from None

    def gpu(self, index: int = 0) -> GpuDevice:
        return self.gpus[index]

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    # ------------------------------------------------------------------
    # Topology surface (Machine as the degenerate one-node cluster)
    # ------------------------------------------------------------------
    # A Machine is node0 of a one-node cluster: every pair of devices is
    # one hop apart, so routes wrap the direct link and transcripts are
    # unchanged. Code above the hw layer uses only this surface, never
    # the concrete Machine/Cluster type.
    def node_of(self, device_name: str) -> "Machine":
        self.device(device_name)   # raise the helpful KeyError if unknown
        return self

    def node_name_of(self, device_name: str) -> str:
        self.device(device_name)
        return "node0"

    def same_node(self, a: str, b: str) -> bool:
        self.device(a)
        self.device(b)
        return True

    def host_cpu(self, device_name: str) -> CpuDevice:
        self.device(device_name)
        return self.cpu

    def route(self, src: str, dst: str) -> "Route":
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is None:
            from repro.hw.topology import Route

            cached = Route(self.engine, [self.link(src, dst)])
            self._routes[key] = cached
        return cached

    def route_cost_ms(self, src: str, dst: str, nbytes: int,
                      n_tensors: int = 1) -> float:
        return self.route(src, dst).cost_ms(nbytes, n_tensors)


# ---------------------------------------------------------------------------
# Testbed builders
# ---------------------------------------------------------------------------
def two_gpu_server(engine: "Engine",
                   tracer: Optional[Tracer] = None) -> Machine:
    """Server 1 of the paper: GTX 1080 Ti + RTX 2080 Ti, dual-Xeon host."""
    machine = Machine(engine, XEON_DUAL_18C, tracer=tracer)
    machine.add_gpu(GTX_1080_TI)
    machine.add_gpu(RTX_2080_TI)
    return machine


def v100_server(engine: "Engine", n_gpus: int = 4,
                tracer: Optional[Tracer] = None) -> Machine:
    """Server 2 of the paper: up to four 32 GB Tesla V100s."""
    if not 1 <= n_gpus <= 4:
        raise ValueError("the V100 server has between 1 and 4 GPUs")
    machine = Machine(engine, XEON_DUAL_18C, tracer=tracer)
    for _ in range(n_gpus):
        machine.add_gpu(TESLA_V100)
    return machine


def jetson_tx2(engine: "Engine", tracer: Optional[Tracer] = None) -> Machine:
    """The Jetson TX2 development kit: shared-DRAM embedded board."""
    machine = Machine(engine, TX2_ARM_A57, tracer=tracer,
                      link_spec=TX2_SHARED_MEM)
    machine.add_gpu(JETSON_TX2_GPU)
    return machine


def single_gpu_server(engine: "Engine", gpu_spec: GpuSpec,
                      tracer: Optional[Tracer] = None) -> Machine:
    """A dual-Xeon host with one GPU of the given spec (Fig. 3 setups)."""
    machine = Machine(engine, XEON_DUAL_18C, tracer=tracer)
    machine.add_gpu(gpu_spec)
    return machine
