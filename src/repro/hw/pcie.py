"""Interconnect links (PCIe / shared DRAM) between devices.

A link serializes transfers in each direction: concurrent requests queue
behind one another, which is what makes the paper's asynchronous state
transfer (Section 3.3, Table 1) occupy the link off the critical path
rather than for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event
from repro.sim.resources import Lock
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

from repro.hw.specs import LinkSpec


@dataclass(frozen=True)
class TransferStats:
    """Outcome of a completed transfer."""

    nbytes: int
    n_tensors: int
    duration_ms: float
    started_at: float
    finished_at: float


def transfer_time_ms(spec: LinkSpec, nbytes: int, n_tensors: int = 1) -> float:
    """Analytic time for a transfer: latency + per-tensor setup + payload."""
    if nbytes < 0 or n_tensors < 0:
        raise ValueError("transfer sizes cannot be negative")
    return (spec.latency_ms
            + n_tensors * spec.per_tensor_overhead_ms
            + nbytes / spec.bytes_per_ms)


class Link:
    """A directed, serialized transfer channel between two endpoints."""

    def __init__(self, engine: "Engine", spec: LinkSpec, src: str, dst: str,
                 tracer: Optional[Tracer] = None) -> None:
        self.engine = engine
        self.spec = spec
        self.src = src
        self.dst = dst
        self.tracer = tracer
        self._lock = Lock(engine)
        self.bytes_moved = 0
        self.transfers_completed = 0

    @property
    def lane(self) -> str:
        return f"link:{self.src}->{self.dst}"

    def transfer(self, nbytes: int, n_tensors: int = 1,
                 label: str = "memcpy") -> Event:
        """Start a transfer; returns an event firing with TransferStats."""
        done = self.engine.event()
        self.engine.process(
            self._run(done, int(nbytes), int(n_tensors), label),
            name=f"{self.lane}:{label}")
        return done

    def _run(self, done: Event, nbytes: int, n_tensors: int, label: str):
        yield self._lock.acquire()
        span = None
        try:
            started = self.engine.now
            duration = transfer_time_ms(self.spec, nbytes, n_tensors)
            if self.tracer is not None:
                span = self.tracer.begin(
                    self.lane, label, nbytes=nbytes, n_tensors=n_tensors)
            yield self.engine.timeout(duration)
            self.bytes_moved += nbytes
            self.transfers_completed += 1
            done.succeed(TransferStats(
                nbytes=nbytes, n_tensors=n_tensors, duration_ms=duration,
                started_at=started, finished_at=self.engine.now))
        finally:
            # Close even when the timeout is interrupted mid-transfer
            # (e.g. a fault kills the run): a leaked open span would trip
            # the span-leak sanitizer check and corrupt lane nesting.
            if span is not None and not span.closed:
                span.close()
            self._lock.release()
