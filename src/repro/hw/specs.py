"""Hardware specification catalog.

The four GPUs and two host CPUs match the paper's testbed (Section 5.1):

* server 1: dual 18-core Xeon, GTX 1080 Ti (11 GB) + RTX 2080 Ti (11 GB)
* server 2: dual 18-core Xeon, 4x Tesla V100 (32 GB)
* Jetson TX2: quad-core ARM Cortex-A57 + 256-core Pascal GPU, 8 GB shared

Numbers are public datasheet values. Absolute simulated times depend on
the efficiency factors in the op cost model; the specs fix the *ratios*
between devices, which is what the evaluation shapes depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GiB = 1024 ** 3
MiB = 1024 ** 2


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU device."""

    name: str
    peak_fp32_tflops: float
    memory_bandwidth_gbps: float     # GB/s
    memory_bytes: int
    sm_count: int
    registers_per_sm: int            # 32-bit registers
    max_threads_per_sm: int
    shared_mem_per_sm_bytes: int
    # Contention coefficient: a kernel co-running with others slows to
    # rate 1 / (1 + contention_beta * occupancy_of_the_others), modeling
    # cache/bandwidth thrash between contexts (Section 2.2, Figure 2).
    contention_beta: float = 0.7
    # Fixed per-kernel launch/driver overhead, in ms.
    kernel_launch_overhead_ms: float = 0.005
    # Extra cost when execution alternates between contexts (L2/TLB
    # refill, scheduler state). This is what makes the Figure 2 co-run
    # throughput collapse to ~half of solo rather than interleave for
    # free.
    context_switch_overhead_ms: float = 0.30

    @property
    def peak_fp32_flops_per_ms(self) -> float:
        """Peak arithmetic throughput per simulated millisecond."""
        return self.peak_fp32_tflops * 1e12 / 1e3

    @property
    def memory_bytes_per_ms(self) -> float:
        return self.memory_bandwidth_gbps * 1e9 / 1e3

    @property
    def total_registers(self) -> int:
        return self.sm_count * self.registers_per_sm


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a host CPU."""

    name: str
    cores: int
    per_core_gflops: float
    # Single-core cost (ms) to JPEG-decode + resize + augment ONE
    # ImageNet image. Batches are split across ``data_workers`` parallel
    # chunk ops (tf.data's num_parallel_calls); the effective amortized
    # per-image cost is image_preprocess_ms / data_workers. Calibrated
    # against the paper's Figure 3 GPU-idle ratios.
    image_preprocess_ms: float
    # Parallel preprocessing threads (the paper uses 32 on the servers).
    data_workers: int = 32
    # Single-core per-sentence tokenize/bucket cost for NMT (ms).
    sentence_preprocess_ms: float = 2.0

    @property
    def per_core_flops_per_ms(self) -> float:
        return self.per_core_gflops * 1e9 / 1e3


@dataclass(frozen=True)
class LinkSpec:
    """An interconnect between two devices (or device and host)."""

    name: str
    bandwidth_gib_s: float
    latency_ms: float = 0.01
    # Fixed cost per tensor transferred (driver call + descriptor setup).
    per_tensor_overhead_ms: float = 0.02

    @property
    def bytes_per_ms(self) -> float:
        return self.bandwidth_gib_s * GiB / 1e3


# ---------------------------------------------------------------------------
# Catalog: GPUs
# ---------------------------------------------------------------------------
GTX_1080_TI = GpuSpec(
    name="GTX 1080 Ti",
    peak_fp32_tflops=11.3,
    memory_bandwidth_gbps=484.0,
    memory_bytes=11 * GiB,
    sm_count=28,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    shared_mem_per_sm_bytes=96 * 1024,
)

RTX_2080_TI = GpuSpec(
    name="RTX 2080 Ti",
    peak_fp32_tflops=13.4,
    memory_bandwidth_gbps=616.0,
    memory_bytes=11 * GiB,
    sm_count=68,
    registers_per_sm=65536,
    max_threads_per_sm=1024,
    shared_mem_per_sm_bytes=64 * 1024,
)

TESLA_V100 = GpuSpec(
    name="Tesla V100",
    peak_fp32_tflops=15.7,
    memory_bandwidth_gbps=900.0,
    memory_bytes=32 * GiB,
    sm_count=80,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    shared_mem_per_sm_bytes=96 * 1024,
)

JETSON_TX2_GPU = GpuSpec(
    name="Jetson TX2",
    peak_fp32_tflops=0.67,
    memory_bandwidth_gbps=59.7,
    memory_bytes=8 * GiB,          # shared with the CPU
    sm_count=2,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    shared_mem_per_sm_bytes=64 * 1024,
)

# ---------------------------------------------------------------------------
# Catalog: CPUs
# ---------------------------------------------------------------------------
XEON_DUAL_18C = CpuSpec(
    name="Xeon 2x18c",
    cores=36,
    per_core_gflops=48.0,
    image_preprocess_ms=80.0,
    data_workers=32,
)

TX2_ARM_A57 = CpuSpec(
    name="TX2 ARM A57",
    cores=4,
    per_core_gflops=8.0,
    image_preprocess_ms=40.0,
    data_workers=4,
    sentence_preprocess_ms=8.0,
)

# ---------------------------------------------------------------------------
# Catalog: links
# ---------------------------------------------------------------------------
# Effective PCIe 3.0 x16 bandwidth (~10.5 GiB/s of the 15.75 GB/s raw) and
# per-tensor descriptor cost, jointly fitted to the paper's Table 1.
PCIE3_X16 = LinkSpec(name="PCIe 3.0 x16", bandwidth_gib_s=10.5,
                     latency_ms=0.02, per_tensor_overhead_ms=0.04)
TX2_SHARED_MEM = LinkSpec(name="TX2 shared DRAM", bandwidth_gib_s=40.0,
                          latency_ms=0.002, per_tensor_overhead_ms=0.001)
# NVLink 2.0, single brick: ~25 GB/s raw per direction; effective GiB/s
# after protocol overhead. Descriptor setup is near-free relative to PCIe
# because transfers bypass the host-driven DMA path.
NVLINK2 = LinkSpec(name="NVLink 2.0", bandwidth_gib_s=22.0,
                   latency_ms=0.005, per_tensor_overhead_ms=0.005)
# 100 GbE RoCE between nodes: raw 12.5 GB/s, effective ~10.8 GiB/s; the
# dominant costs are switch/NIC latency and per-message framing, which
# is why many-small-tensor transfers are punished far harder than on
# NVLink even though headline bandwidth is comparable to PCIe.
NETWORK_100G = LinkSpec(name="100GbE RoCE", bandwidth_gib_s=10.8,
                        latency_ms=0.15, per_tensor_overhead_ms=0.06)

LINK_CATALOG: Dict[str, LinkSpec] = {
    spec.name: spec
    for spec in (PCIE3_X16, TX2_SHARED_MEM, NVLINK2, NETWORK_100G)
}

GPU_CATALOG: Dict[str, GpuSpec] = {
    spec.name: spec
    for spec in (GTX_1080_TI, RTX_2080_TI, TESLA_V100, JETSON_TX2_GPU)
}

CPU_CATALOG: Dict[str, CpuSpec] = {
    spec.name: spec for spec in (XEON_DUAL_18C, TX2_ARM_A57)
}
