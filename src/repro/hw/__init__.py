"""Hardware substrate: simulated GPUs, CPUs, memory, and interconnects.

Replaces the paper's physical testbed (GTX 1080 Ti / RTX 2080 Ti / Tesla
V100 / Jetson TX2) with calibrated resource models. See DESIGN.md §2 for
the substitution rationale.
"""

from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.kernels import KernelLaunch
from repro.hw.machine import (
    Machine,
    jetson_tx2,
    single_gpu_server,
    two_gpu_server,
    v100_server,
)
from repro.hw.memory import MemoryPool, OutOfMemoryError
from repro.hw.occupancy import (
    KernelResourceDemand,
    blocks_per_sm,
    can_corun,
    device_occupancy,
)
from repro.hw.pcie import Link, TransferStats, transfer_time_ms
from repro.hw.specs import (
    CPU_CATALOG,
    GPU_CATALOG,
    GTX_1080_TI,
    JETSON_TX2_GPU,
    LINK_CATALOG,
    NETWORK_100G,
    NVLINK2,
    PCIE3_X16,
    RTX_2080_TI,
    TESLA_V100,
    TX2_ARM_A57,
    TX2_SHARED_MEM,
    XEON_DUAL_18C,
    CpuSpec,
    GpuSpec,
    LinkSpec,
)
from repro.hw.topology import Cluster, Node, Route, v100_cluster

__all__ = [
    "CPU_CATALOG",
    "Cluster",
    "CpuDevice",
    "CpuSpec",
    "GPU_CATALOG",
    "GTX_1080_TI",
    "GpuDevice",
    "GpuSpec",
    "JETSON_TX2_GPU",
    "KernelLaunch",
    "KernelResourceDemand",
    "LINK_CATALOG",
    "Link",
    "LinkSpec",
    "Machine",
    "MemoryPool",
    "NETWORK_100G",
    "NVLINK2",
    "Node",
    "OutOfMemoryError",
    "PCIE3_X16",
    "RTX_2080_TI",
    "Route",
    "TESLA_V100",
    "TX2_ARM_A57",
    "TX2_SHARED_MEM",
    "TransferStats",
    "XEON_DUAL_18C",
    "blocks_per_sm",
    "can_corun",
    "device_occupancy",
    "jetson_tx2",
    "single_gpu_server",
    "transfer_time_ms",
    "two_gpu_server",
    "v100_cluster",
    "v100_server",
]
