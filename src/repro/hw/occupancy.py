"""Occupancy calculator.

Mirrors the reasoning of NVIDIA's CUDA occupancy calculator at the
granularity this simulation needs: given a kernel's per-thread register
demand, block size, and grid size, compute what fraction of the device's
SM resources the kernel occupies while resident.

The paper's motivation study (Section 2.2) found that 10 of 13 cuDNN
convolution kernels were *register-file bound* and could not co-run; the
same conclusion falls out of this model for kernels whose register demand
saturates the SMs they span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import GpuSpec


@dataclass(frozen=True)
class KernelResourceDemand:
    """Raw per-kernel resource requirements (cuDNN-tuned-kernel style)."""

    threads_per_block: int
    registers_per_thread: int
    shared_mem_per_block_bytes: int
    blocks: int

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.blocks <= 0:
            raise ValueError("threads_per_block and blocks must be positive")
        if self.registers_per_thread < 0 or self.shared_mem_per_block_bytes < 0:
            raise ValueError("resource demands cannot be negative")


def blocks_per_sm(demand: KernelResourceDemand, spec: GpuSpec) -> int:
    """Max resident blocks on one SM, limited by threads/registers/shmem."""
    by_threads = spec.max_threads_per_sm // demand.threads_per_block
    if demand.registers_per_thread > 0:
        regs_per_block = demand.registers_per_thread * demand.threads_per_block
        by_registers = spec.registers_per_sm // regs_per_block
    else:
        by_registers = by_threads
    if demand.shared_mem_per_block_bytes > 0:
        by_shmem = (spec.shared_mem_per_sm_bytes
                    // demand.shared_mem_per_block_bytes)
    else:
        by_shmem = by_threads
    return max(0, min(by_threads, by_registers, by_shmem))


def device_occupancy(demand: KernelResourceDemand, spec: GpuSpec) -> float:
    """Fraction of the whole device the kernel occupies while resident.

    A tuned kernel launches enough blocks to cover every SM; a small
    kernel (few blocks) occupies only the SMs it actually lands on.
    Returns a value in (0, 1]; 1.0 means "cannot co-run with anything".
    """
    per_sm = blocks_per_sm(demand, spec)
    if per_sm == 0:
        # The kernel does not fit on an SM at all (over-demanding); treat
        # it as device-filling — the driver serializes it.
        return 1.0
    sms_needed = min(
        spec.sm_count,
        (demand.blocks + per_sm - 1) // per_sm,
    )
    sm_fraction = sms_needed / spec.sm_count
    # Within the SMs it spans, how much of the register file does it pin?
    regs_used = (demand.registers_per_thread * demand.threads_per_block
                 * min(per_sm, demand.blocks))
    register_fraction = min(1.0, regs_used / spec.registers_per_sm)
    occupancy = sm_fraction * max(register_fraction, 0.25)
    return max(1e-3, min(1.0, occupancy))


def can_corun(occ_a: float, occ_b: float) -> bool:
    """Two kernels may execute simultaneously iff their demands fit."""
    return occ_a + occ_b <= 1.0
