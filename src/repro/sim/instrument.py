"""Hook point for the dynamic concurrency tracker.

The runtime's synchronization sources (``DeviceGate``, ``Semaphore``,
``ThreadPool`` hand-off, rendezvous channels) and its shared-state
access sites guard every instrumentation call with::

    t = instrument.TRACKER
    if t is not None:
        t.on_...(...)

so a disabled tracker costs one module-global load and a ``None`` test
— nothing allocates, nothing is formatted. The tracker itself lives in
:mod:`repro.analysis.concurrency`; this module stays dependency-free so
``sim``/``core``/``runtime``/``hw`` can import it without layering
cycles.

Exactly one tracker is installed at a time. ``set_tracker`` replaces
any previous tracker (the common test pattern: each context attaches
its own); hooks that carry an engine-bearing object are dropped by the
tracker when the object belongs to a different engine.
"""

from __future__ import annotations

from typing import Any, Optional

#: The installed tracker, or None (the default: tracking disabled).
TRACKER: Optional[Any] = None


def set_tracker(tracker: Any) -> None:
    """Install ``tracker`` as the process-wide concurrency tracker."""
    global TRACKER
    TRACKER = tracker


def clear_tracker(tracker: Optional[Any] = None) -> None:
    """Remove the installed tracker.

    With an argument, clears only if that exact tracker is installed —
    so an old tracker's teardown cannot unhook its replacement.
    """
    global TRACKER
    if tracker is None or TRACKER is tracker:
        TRACKER = None
