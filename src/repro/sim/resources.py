"""Simulated synchronization and queueing primitives.

These model OS/runtime constructs (mutexes, semaphores, bounded FIFOs)
inside simulated time. All waiters are served in strict FIFO (or priority)
order, which keeps the simulation deterministic.

Pending ``get``/``put``/``acquire`` requests are plain events and may be
``cancel()``-ed — the hook that SwitchFlow's preemption path uses to abort
work that is queued but not yet running.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from repro.sim import instrument
from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class _Request(Event):
    """Base class for queued resource requests; supports cancellation."""

    __slots__ = ("resource",)

    def __init__(self, engine: "Engine", resource: Any) -> None:
        super().__init__(engine)
        self.resource = resource

    def cancel(self, reason: Optional[str] = None) -> bool:
        cancelled = super().cancel(reason)
        if cancelled:
            # A cancelled request must not hold up the queue; let the
            # resource drop it and serve the next waiter.
            self.resource._drop(self)
        return cancelled


class Semaphore:
    """Counting semaphore with priority-then-FIFO waiters.

    ``acquire(priority=...)`` lets urgent short work (e.g. executor
    dispatch microtasks) jump ahead of queued bulk work (e.g. image
    decode chunks) — the coarse analogue of OS scheduling classes.
    Within one priority, waiters are served FIFO.
    """

    def __init__(self, engine: "Engine", value: int = 1,
                 name: Optional[str] = None) -> None:
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.engine = engine
        self.name = name  # labels the resource in concurrency reports
        self._count = value
        self._waiters: Deque[Tuple[int, int, _Request]] = deque()
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of currently available permits."""
        return self._count

    def acquire(self, priority: int = 0) -> Event:
        """Return an event that fires once a permit is granted.

        Lower ``priority`` values are served first.
        """
        request = _Request(self.engine, self)
        if self._count > 0 and not self._waiters:
            self._count -= 1
            request.succeed()
        else:
            self._seq += 1
            self._waiters.append((priority, self._seq, request))
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_sem_acquire(self, request,
                                   exclusive=isinstance(self, Lock))
        return request

    def try_acquire(self) -> bool:
        """Take a permit immediately if one is free."""
        if self._count > 0 and not self._waiters:
            self._count -= 1
            tracker = instrument.TRACKER
            if tracker is not None:
                tracker.on_sem_try(self, exclusive=isinstance(self, Lock))
            return True
        return False

    def release(self) -> None:
        """Return a permit, waking the best-priority oldest waiter."""
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_sem_release(self)
        waiters = self._waiters
        while waiters:
            if len(waiters) == 1:
                # Sole waiter: skip the O(n) best-entry scan.
                request = waiters.popleft()[2]
            else:
                best = min(waiters, key=lambda entry: entry[:2])
                waiters.remove(best)
                request = best[2]
            if not request.triggered:
                request.succeed()
                return
        self._count += 1

    def _drop(self, request: _Request) -> None:
        for entry in self._waiters:
            if entry[2] is request:
                self._waiters.remove(entry)
                break

    def __repr__(self) -> str:
        return (f"<Semaphore count={self._count} "
                f"waiters={len(self._waiters)}>")


class Lock(Semaphore):
    """Binary semaphore (mutex)."""

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine, value=1)

    @property
    def locked(self) -> bool:
        return self._count == 0

    def release(self) -> None:
        if self._count == 1 and not self._waiters:
            raise SimulationError("release of an unlocked Lock")
        super().release()


class Store:
    """FIFO queue of items with optional capacity bound.

    ``put`` returns an event that fires when the item has been accepted;
    ``get`` returns an event that fires with the next item.
    """

    def __init__(self, engine: "Engine", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("store capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[_Request] = deque()
        self._putters: Deque[Tuple[_Request, Any]] = deque()

    # ------------------------------------------------------------------
    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Event:
        request = _Request(self.engine, self)
        self._putters.append((request, item))
        self._service()
        return request

    def get(self) -> Event:
        request = _Request(self.engine, self)
        self._getters.append(request)
        self._service()
        return request

    def try_get(self) -> Tuple[bool, Any]:
        """Pop an item immediately if one is queued: (ok, item)."""
        self._admit_putters()
        if self._items and not self._getters:
            return True, self._items.popleft()
        return False, None

    def clear(self, predicate: Optional[Callable[[Any], bool]] = None) -> List[Any]:
        """Remove and return queued items matching ``predicate`` (or all).

        Used by preemption to abort work that is queued but not running.
        """
        self._admit_putters()
        if predicate is None:
            removed = list(self._items)
            self._items.clear()
        else:
            removed = [item for item in self._items if predicate(item)]
            self._items = deque(
                item for item in self._items if not predicate(item))
        self._service()
        return removed

    # ------------------------------------------------------------------
    def _admit_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            request, item = self._putters.popleft()
            if request.triggered:
                continue
            self._items.append(item)
            request.succeed()

    def _service(self) -> None:
        self._admit_putters()
        while self._getters and self._items:
            request = self._getters.popleft()
            if request.triggered:
                continue
            request.succeed(self._items.popleft())
            self._admit_putters()

    def _drop(self, request: _Request) -> None:
        try:
            self._getters.remove(request)
        except ValueError:
            pass
        for index, (putter, _item) in enumerate(self._putters):
            if putter is request:
                del self._putters[index]
                break
        self._service()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} items={len(self._items)} "
                f"getters={len(self._getters)} putters={len(self._putters)}>")


class PriorityStore(Store):
    """Store that yields the smallest item first (items must be orderable)."""

    def __init__(self, engine: "Engine", capacity: float = float("inf")) -> None:
        super().__init__(engine, capacity)
        self._heap: List[Any] = []
        self._heap_seq = 0

    @property
    def items(self) -> List[Any]:
        return [entry[-1] for entry in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)

    def _admit_putters(self) -> None:
        while self._putters and len(self._heap) < self.capacity:
            request, item = self._putters.popleft()
            if request.triggered:
                continue
            self._heap_seq += 1
            heapq.heappush(self._heap, (item, self._heap_seq, item))
            request.succeed()

    def _service(self) -> None:
        self._admit_putters()
        while self._getters and self._heap:
            request = self._getters.popleft()
            if request.triggered:
                continue
            request.succeed(heapq.heappop(self._heap)[-1])
            self._admit_putters()

    def try_get(self) -> Tuple[bool, Any]:
        self._admit_putters()
        if self._heap and not self._getters:
            return True, heapq.heappop(self._heap)[-1]
        return False, None

    def clear(self, predicate: Optional[Callable[[Any], bool]] = None) -> List[Any]:
        self._admit_putters()
        if predicate is None:
            removed = [entry[-1] for entry in self._heap]
            self._heap = []
        else:
            removed = [entry[-1] for entry in self._heap if predicate(entry[-1])]
            self._heap = [
                entry for entry in self._heap if not predicate(entry[-1])]
            heapq.heapify(self._heap)
        self._service()
        return removed
