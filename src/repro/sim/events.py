"""Event primitives for the discrete-event simulation kernel.

The design follows the classic callback-list model: an :class:`Event` starts
*pending*, is *triggered* when scheduled onto the engine's agenda (with a
value or an exception), and becomes *processed* once the engine has invoked
its callbacks. Processes (see :mod:`repro.sim.process`) suspend by yielding
events and are resumed through those callbacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.sim.errors import EventCancelled, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

# Sentinel for "not yet triggered".
PENDING = object()

# Scheduling priorities: urgent events (interrupts) preempt normal ones that
# are scheduled for the same timestamp.
URGENT = 0
NORMAL = 1

# Event-type tags: a class-level int so the array-core dispatch loop can
# switch on the dominant concrete types without isinstance checks. Only
# TAG_TIMEOUT changes dispatch behaviour today (pool recycling); the rest
# exist so profiling tools and future dispatch-table entries can bucket
# events without touching Python's MRO.
TAG_GENERIC = 0
TAG_TIMEOUT = 1
TAG_PROCESS = 2
TAG_INITIALIZE = 3
TAG_INTERRUPTION = 4
TAG_CONDITION = 5


class Event:
    """A one-shot occurrence that processes can wait on.

    An event carries either a value (on success) or an exception (on
    failure). Failures propagate into every waiting process unless a
    callback marks the event as *defused*.

    ``_waiter`` is the array core's direct-resume slot: when exactly one
    process waits on an event (the overwhelmingly common case), it parks
    itself here instead of appending a bound-method callback, and the
    dispatch loop resumes it without touching the callback list. The
    waiter is always delivered *before* listed callbacks — identical to
    the heap cores, where the waiter's callback would have been appended
    first (the slot is only used while the callback list is empty).
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused",
                 "_waiter")

    _tag = TAG_GENERIC

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._waiter: Optional[Any] = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def defused(self) -> None:
        """Mark a failure as handled so the engine does not crash."""
        self._defused = True

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused()
            self.fail(event._value)

    def cancel(self, reason: Optional[str] = None) -> bool:
        """Fail a still-pending event with :class:`EventCancelled`.

        Returns True if the event was cancelled, False if it had already
        triggered (cancellation raced with completion and lost).
        """
        if self.triggered:
            return False
        self.fail(EventCancelled(reason))
        # A deliberate cancellation is not an error: pre-defuse so the
        # engine does not crash when nobody is waiting on the event.
        self._defused = True
        return True

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units.

    On the array core, processed timeouts whose sole owner was the
    engine are recycled through ``Engine._timeout_pool`` — construction
    here is the cold path.
    """

    __slots__ = ("delay",)

    _tag = TAG_TIMEOUT

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine.schedule(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of ``events`` is processed.

    Succeeds with a dict mapping the already-processed events to their
    values. Fails if the first event to fire failed. Note: conditions
    key on *processed*, not *triggered* — a Timeout is triggered from
    birth (it is scheduled), but has not yet occurred.
    """

    __slots__ = ("events",)

    _tag = TAG_CONDITION

    def __init__(self, engine: "Engine", events: List[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._collect(event)
                break
        else:
            for event in self.events:
                event.callbacks.append(self._collect)

    def _collect(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
            return
        self.succeed({
            evt: evt._value for evt in self.events
            if evt.processed and evt._ok
        })


class AllOf(Event):
    """Fires when every one of ``events`` has been processed.

    Succeeds with a dict mapping each event to its value; fails as soon
    as any constituent event fails.
    """

    __slots__ = ("events", "_remaining")

    _tag = TAG_CONDITION

    def __init__(self, engine: "Engine", events: List[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.processed:
                if not event._ok:
                    event.defused()
                    self.fail(event._value)
                    return
            else:
                self._remaining += 1
                event.callbacks.append(self._collect)
        if self._remaining == 0 and not self.triggered:
            self.succeed({evt: evt._value for evt in self.events})

    def _collect(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused()
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({evt: evt._value for evt in self.events})
