"""The discrete-event simulation engine (event loop).

The engine keeps an agenda of (time, priority, sequence, event) entries.
:meth:`Engine.run` pops entries in order, advances the simulated clock,
and invokes event callbacks — which is how processes get resumed. The
engine is fully deterministic: two runs with the same seed and the same
process structure produce identical schedules.

Three interchangeable cores back the agenda (``Engine(core=...)``); all
three produce **bit-identical schedules** (proven by the hypothesis
three-way transcript suite in ``tests/test_engine_equivalence.py``):

``"legacy"``
    The original peek/step loop over a single binary heap of
    (time, priority, sequence, event) tuples. Kept as the measured
    baseline for ``benchmarks/bench_core.py`` and as the semantic
    oracle. Selected by ``fast_path=False``.

``"twolane"``
    The PR-2 fast path: the heap plus a FIFO *immediate lane* deque for
    events triggered at the current time with normal priority. Kept as
    a second oracle.

``"array"`` (default)
    The array-structured event core. The four tuple columns become
    implicit — the agenda stores bare event references in
    position-encoded arrays:

    * **time** is the key of a calendar bucket: a dict mapping each
      distinct future timestamp to a pooled list of events, plus a
      float-only heap of distinct times. Popping a time slice is one
      float-heap pop + one dict pop, so ordering cost is paid per
      *distinct timestamp*, not per event — and float-only heap sifts
      avoid tuple comparison entirely.
    * **priority** is which lane a reference lives in: urgent buckets
      drain before normal buckets, which drain before the immediate
      lane (all at one timestamp).
    * **sequence** is array position: within a lane, append order *is*
      schedule order, so no sequence counter is maintained at all.
    * **event** is the one materialised column.

    The immediate lane is a double-buffered FIFO (an append array and a
    drain array that swap roles), the dominant ``succeed()`` path costs
    one ``list.append``. ``Engine.timeout`` recycles pooled
    :class:`Timeout` objects (sole-ownership proven via ``getrefcount``
    before reuse), and processes park directly in the event's
    ``_waiter`` slot instead of allocating a bound-method callback per
    step — see DESIGN.md §9 for the layout, the event-type tags, and
    the pooling lifetime rules.
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.sim import instrument as _instrument
from repro.sim.errors import SimulationError, StopSimulation, UnhandledEventFailure
from repro.sim.events import (
    NORMAL, TAG_TIMEOUT, URGENT, AllOf, AnyOf, Event, Timeout,
)
from repro.sim.process import Process, ProcessGenerator

Infinity = float("inf")

Entry = Tuple[float, int, int, Event]

CORES = ("array", "twolane", "legacy")

# Array-core pool bounds. Lists are recycled through one pool shared by
# calendar buckets, slice lanes and the immediate double-buffer; Timeout
# objects through a second. Both are caps on *retained* idle objects,
# not on live agenda size.
_LIST_POOL_MAX = 32
_TIMEOUT_POOL_MAX = 512


class PeriodicHandle:
    """Cancellation handle for :meth:`Engine.every`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Deterministic discrete-event simulation core.

    Time units are abstract; throughout this project they are interpreted
    as **milliseconds** of simulated wall-clock time.
    """

    # Slots turn every hot-path attribute access (timeout creation,
    # lane routing, clock reads) from a dict lookup into an array load.
    __slots__ = ("core", "_array", "_fast", "_now", "active_process",
                 "_agenda", "_immediate", "_sequence",
                 "_buckets", "_urgents", "_times",
                 "_cur_u", "_cur_u_i", "_cur_n", "_cur_n_i",
                 "_slice_open", "_slice_time",
                 "_imq", "_imd", "_imd_i",
                 "_timeout_pool", "_list_pool",
                 "_lb_when", "_lb_list")

    def __init__(self, initial_time: float = 0.0, fast_path: bool = True,
                 core: Optional[str] = None) -> None:
        if core is None:
            core = "array" if fast_path else "legacy"
        if core not in CORES:
            raise ValueError(f"unknown engine core {core!r}; expected one "
                             f"of {CORES}")
        self.core = core
        self._array = core == "array"
        self._fast = core == "twolane"
        self._now = float(initial_time)
        self.active_process: Optional[Process] = None
        # Heap cores (legacy / twolane).
        self._agenda: List[Entry] = []
        self._immediate: Deque[Entry] = deque()
        self._sequence = 0
        # Array core: calendar agenda. Future events live in per-time
        # bucket lists; the float heap orders the distinct times. The
        # heap may hold stale or duplicate times (cheaper than keeping
        # it exact); consumers skip entries absent from both dicts.
        self._buckets: Dict[float, List[Event]] = {}
        self._urgents: Dict[float, List[Event]] = {}
        self._times: List[float] = []
        # Array core: the open time slice (urgent lane then normal
        # bucket lane, each an array plus a drain cursor).
        self._cur_u: List[Event] = []
        self._cur_u_i = 0
        self._cur_n: List[Event] = []
        self._cur_n_i = 0
        self._slice_open = False
        self._slice_time = self._now
        # Array core: immediate lane — double-buffered FIFO. succeed()
        # appends to `_imq`; the loop drains `_imd` and swaps buffers.
        self._imq: List[Event] = []
        self._imd: List[Event] = []
        self._imd_i = 0
        # Array core: recycled objects.
        self._timeout_pool: List[Timeout] = []
        self._list_pool: List[list] = []
        # Array core: last-bucket cache. Schedules cluster on a few
        # future times (every process in a wave re-arms to the same
        # deadline), so the repeat append skips the dict round trip.
        # Entries go stale only for times already in the past, which
        # no insert can target again: `when == now` routes to the
        # immediate lane and the clock never moves backwards.
        self._lb_when: Optional[float] = None
        self._lb_list: List[Event] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or infinity if none."""
        if self._array:
            if (self._cur_u_i < len(self._cur_u)
                    or self._cur_n_i < len(self._cur_n)
                    or self._imd_i < len(self._imd)
                    or self._imq):
                return self._now
            when = self._next_time()
            return when if when is not None else Infinity
        head = self._head()
        return head[0] if head is not None else Infinity

    def _head(self) -> Optional[Entry]:
        """The next entry across both heap-core lanes (without removing)."""
        agenda = self._agenda
        immediate = self._immediate
        if immediate:
            if agenda and agenda[0] < immediate[0]:
                return agenda[0]
            return immediate[0]
        if agenda:
            return agenda[0]
        return None

    def _pop(self) -> Entry:
        """Remove and return the next entry across both heap-core lanes."""
        agenda = self._agenda
        immediate = self._immediate
        if immediate:
            if agenda and agenda[0] < immediate[0]:
                return heapq.heappop(agenda)
            return immediate.popleft()
        return heapq.heappop(agenda)

    # ------------------------------------------------------------------
    # Array-core calendar helpers
    # ------------------------------------------------------------------
    def _next_time(self) -> Optional[float]:
        """Next distinct timestamp with pending events, pruning stale
        times-heap entries (times whose buckets were already drained)."""
        times = self._times
        buckets = self._buckets
        urgents = self._urgents
        while times:
            when = times[0]
            if when in buckets or when in urgents:
                return when
            heapq.heappop(times)
        return None

    def _advance_to(self, when: float) -> None:
        """Open the time slice at ``when`` (the head of the times heap)."""
        heapq.heappop(self._times)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("agenda time went backwards")
        self._now = when
        self._open_slice(when)

    def _open_slice(self, when: float) -> None:
        """Pop the calendar buckets at ``when`` into the live slice lanes,
        recycling the previous (fully drained) slice's lists."""
        pool = self._list_pool
        if self._slice_open:
            old_u = self._cur_u
            old_n = self._cur_n
            if len(pool) < _LIST_POOL_MAX:
                del old_u[:]
                pool.append(old_u)
            if old_n is not old_u and len(pool) < _LIST_POOL_MAX:
                del old_n[:]
                pool.append(old_n)
        u = self._urgents.pop(when, None)
        n = self._buckets.pop(when, None)
        self._cur_u = u if u is not None else (pool.pop() if pool else [])
        self._cur_n = n if n is not None else (pool.pop() if pool else [])
        self._cur_u_i = 0
        self._cur_n_i = 0
        self._slice_open = True
        self._slice_time = when

    def _ensure_slice(self) -> None:
        """Make the live slice refer to the current time.

        The slice can refer to an older time only after ``run(until=N)``
        snapped the clock to the horizon — at which point it is fully
        drained — so reopening never discards pending events.
        """
        if not (self._slice_open and self._slice_time == self._now):
            self._open_slice(self._now)

    # ------------------------------------------------------------------
    # Event factories (convenience so processes write `yield env.timeout(x)`)
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ms.

        On the array core this recycles a pooled, already-processed
        :class:`Timeout` when one is available — the dominant
        ``yield env.timeout(x)`` path allocates nothing.
        """
        if self._array:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            pool = self._timeout_pool
            if pool:
                event = pool.pop()
                event._defused = False
            else:
                # Inlined construction (the two-level __init__ call chain
                # is measurable at agenda rates); mirrors Timeout.__init__.
                event = Timeout.__new__(Timeout)
                event.engine = self
                event.callbacks = []
                event._ok = True
                event._defused = False
                event._waiter = None
            event.delay = delay
            event._value = value
            now = self._now
            when = now + delay
            if when == now:
                self._imq.append(event)
            elif when == self._lb_when:
                self._lb_list.append(event)
            else:
                try:
                    bucket = self._buckets[when]
                except KeyError:
                    lp = self._list_pool
                    bucket = lp.pop() if lp else []
                    self._buckets[when] = bucket
                    heapq.heappush(self._times, when)
                bucket.append(event)
                self._lb_when = when
                self._lb_list = bucket
            return event
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        proc = Process(self, generator, name=name)
        tracker = _instrument.TRACKER
        if tracker is not None:
            tracker.process_created(proc)
        return proc

    def at(self, when: float, callback) -> Timeout:
        """Invoke ``callback(engine)`` at absolute simulated time ``when``.

        The hook the fault injector uses for one-shot clock-scoped
        faults; returns the underlying timeout event so callers can
        await or inspect it.
        """
        when = float(when)
        if when < self._now:
            raise ValueError(
                f"at({when}) is in the past (now={self._now})")
        event = self.timeout(when - self._now)
        event.callbacks.append(lambda _event: callback(self))
        return event

    def every(self, interval_ms: float, callback,
              first_delay_ms: Optional[float] = None) -> "PeriodicHandle":
        """Invoke ``callback(engine)`` every ``interval_ms`` until cancelled.

        The periodic backbone of the time-series sampler (and clock
        faults): each firing re-arms the next via a plain timeout, so a
        bounded ``run(until=...)`` simply leaves the final pending
        timeout on the agenda. With ``run(until=None)`` an uncancelled
        periodic keeps the agenda non-empty forever — cancel it first.

        Each re-arm targets the *absolute* next fire time
        ``anchor + k * interval`` rather than a relative interval from
        the previous firing, so float rounding does not compound across
        thousands of windows (the error per firing stays within one ulp
        of the ideal grid instead of accumulating).
        """
        interval_ms = float(interval_ms)
        if interval_ms <= 0:
            raise ValueError(f"interval must be positive, got {interval_ms}")
        handle = PeriodicHandle()
        first_delay = (interval_ms if first_delay_ms is None
                       else float(first_delay_ms))
        anchor = self._now + first_delay
        fired = 0

        def _arm(delay: float) -> None:
            event = self.timeout(delay)
            event.callbacks.append(_fire)

        def _fire(_event: Event) -> None:
            nonlocal fired
            if handle.cancelled:
                return
            callback(self)
            if not handle.cancelled:
                fired += 1
                delay = (anchor + fired * interval_ms) - self._now
                _arm(delay if delay > 0.0 else 0.0)

        _arm(first_delay)
        return handle

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place a triggered event on the agenda ``delay`` ms from now."""
        if self._array:
            now = self._now
            when = now + delay
            if priority == NORMAL:
                # Lane choice keys on the *computed* fire time: a tiny
                # positive delay can collapse to `when == now`, and such
                # events must keep immediate-lane FIFO order.
                if when == now:
                    self._imq.append(event)
                    return
                if when == self._lb_when:
                    self._lb_list.append(event)
                    return
                try:
                    bucket = self._buckets[when]
                except KeyError:
                    lp = self._list_pool
                    bucket = lp.pop() if lp else []
                    self._buckets[when] = bucket
                    heapq.heappush(self._times, when)
                bucket.append(event)
                self._lb_when = when
                self._lb_list = bucket
                return
            if priority != URGENT:
                raise SimulationError(
                    f"array core supports URGENT/NORMAL priorities, "
                    f"got {priority}")
            if (when == now and self._slice_open
                    and self._slice_time == now):
                self._cur_u.append(event)
                return
            bucket = self._urgents.get(when)
            if bucket is None:
                lp = self._list_pool
                bucket = lp.pop() if lp else []
                self._urgents[when] = bucket
                heapq.heappush(self._times, when)
            bucket.append(event)
            return
        self._sequence = sequence = self._sequence + 1
        if delay == 0.0 and priority == NORMAL and self._fast:
            # Immediate lane: (time, priority, sequence) is monotonically
            # increasing across appends, so the deque stays key-sorted.
            self._immediate.append((self._now, NORMAL, sequence, event))
        else:
            heapq.heappush(
                self._agenda,
                (self._now + delay, priority, sequence, event))

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if self._array:
            self._ensure_slice()
            event = self._pop_array()
            if event is None:
                raise SimulationError("attempt to step an empty agenda")
            self._dispatch_array(event)
            return
        if not self._agenda and not self._immediate:
            raise SimulationError("attempt to step an empty agenda")
        when, _priority, _seq, event = self._pop()
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("agenda time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise UnhandledEventFailure(
                f"event failed and nobody handled it: {event._value!r}"
            ) from event._value

    def _pop_array(self) -> Optional[Event]:
        """Remove and return the next event (array core), advancing the
        clock if the current slice and immediate lane are drained."""
        cur_u = self._cur_u
        if self._cur_u_i < len(cur_u):
            index = self._cur_u_i
            event = cur_u[index]
            cur_u[index] = None
            self._cur_u_i = index + 1
            return event
        cur_n = self._cur_n
        if self._cur_n_i < len(cur_n):
            index = self._cur_n_i
            event = cur_n[index]
            cur_n[index] = None
            self._cur_n_i = index + 1
            return event
        imd = self._imd
        if self._imd_i < len(imd):
            index = self._imd_i
            event = imd[index]
            imd[index] = None
            self._imd_i = index + 1
            return event
        if self._imq:
            pool = self._list_pool
            if len(pool) < _LIST_POOL_MAX:
                del imd[:]
                pool.append(imd)
            self._imd = imd = self._imq
            self._imq = pool.pop() if pool else []
            event = imd[0]
            imd[0] = None
            self._imd_i = 1
            return event
        when = self._next_time()
        if when is None:
            return None
        self._advance_to(when)
        return self._pop_array()

    def _dispatch_array(self, event: Event) -> None:
        """Deliver one event: waiter slot first, then listed callbacks."""
        callbacks = event.callbacks
        event.callbacks = None
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
            if not callbacks:
                # A parked process received the outcome (and defused any
                # failure); nothing else observed this event.
                return
            for callback in callbacks:
                callback(event)
        else:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise UnhandledEventFailure(
                f"event failed and nobody handled it: {event._value!r}"
            ) from event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the agenda drains), a number
        (run until that simulated time), or an :class:`Event` (run until
        that event fires, returning its value).

        Clock semantics for a numeric ``until``: when the loop finishes
        normally — the horizon is reached *or* the agenda drains early —
        the clock lands on ``until`` exactly once. A :class:`StopSimulation`
        (or an unhandled failure) leaves the clock at the time of the
        event that raised it; it never jumps ahead to the horizon.
        """
        stop_event: Optional[Event] = None
        horizon = Infinity
        if until is not None:
            if isinstance(until, Event):
                if until.triggered:
                    return until.value
                stop_event = until
                stop_event.callbacks.append(self._stop_on)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} is in the past (now={self._now})")

        try:
            if self._array:
                self._run_array(horizon)
            elif self._fast:
                self._run_fast(horizon)
            else:
                self._run_legacy(horizon)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) exhausted the agenda before the event fired")
        if horizon is not Infinity and self._now < horizon:
            self._now = horizon
        return None

    def _run_legacy(self, horizon: float) -> None:
        """The original peek/step loop (benchmark baseline)."""
        while self._agenda or self._immediate:
            if self.peek() > horizon:
                return
            self.step()

    def _run_fast(self, horizon: float) -> None:
        """Inlined two-lane event loop: merged pop, direct dispatch.

        Semantically identical to ``_run_legacy`` — it exists to strip
        the per-event method-call and heap overhead off the hot path.
        """
        agenda = self._agenda
        immediate = self._immediate
        heappop = heapq.heappop
        popleft = immediate.popleft
        bounded = horizon is not Infinity
        while True:
            if immediate:
                if agenda and agenda[0] < immediate[0]:
                    entry = heappop(agenda)
                else:
                    entry = popleft()
            elif agenda:
                entry = heappop(agenda)
            else:
                return
            when = entry[0]
            if bounded and when > horizon:
                # Put the entry back: run() may be called again later.
                heapq.heappush(agenda, entry)
                return
            self._now = when
            event = entry[3]
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise UnhandledEventFailure(
                    f"event failed and nobody handled it: {event._value!r}"
                ) from event._value

    def _run_array(self, horizon: float) -> None:
        """Inlined array-core event loop.

        Drain order within one time slice: urgent lane, then the
        calendar bucket (events scheduled for this time from an earlier
        time — necessarily older sequence numbers), then the immediate
        lane (events triggered *at* this time, in trigger order). New
        urgent arrivals land in the live urgent lane and preempt the
        rest of the slice, matching the heap cores' priority order.

        Slice and lane cursors are mirrored back into engine fields on
        every exit path (``finally``), so a :class:`StopSimulation`, an
        unhandled failure, or a horizon return leaves the engine
        resumable mid-slice.
        """
        self._ensure_slice()
        bounded = horizon is not Infinity
        getrefcount = sys.getrefcount
        timeout_pool = self._timeout_pool
        list_pool = self._list_pool
        bu = self._cur_u
        bui = self._cur_u_i
        bn = self._cur_n
        bni = self._cur_n_i
        imd = self._imd
        imdi = self._imd_i
        try:
            while True:
                if bui < len(bu):
                    event = bu[bui]
                    bu[bui] = None
                    bui += 1
                elif bni < len(bn):
                    event = bn[bni]
                    bn[bni] = None
                    bni += 1
                elif imdi < len(imd):
                    event = imd[imdi]
                    imd[imdi] = None
                    imdi += 1
                elif self._imq:
                    # Swap the immediate-lane double buffer: recycle the
                    # drained array, drain the append array next.
                    if len(list_pool) < _LIST_POOL_MAX:
                        del imd[:]
                        list_pool.append(imd)
                    self._imd = imd = self._imq
                    imdi = 0
                    self._imq = list_pool.pop() if list_pool else []
                    continue
                else:
                    when = self._next_time()
                    if when is None or (bounded and when > horizon):
                        return
                    self._imd_i = imdi
                    self._advance_to(when)
                    bu = self._cur_u
                    bui = 0
                    bn = self._cur_n
                    bni = 0
                    continue
                # -- dispatch (mirrors _dispatch_array, inlined) --
                callbacks = event.callbacks
                event.callbacks = None
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    # Inlined Process._resume (one generator step):
                    # saves a call frame per step at agenda rates.
                    # Mirrors process.Process._resume — keep in sync.
                    self.active_process = waiter
                    step = event
                    while True:
                        try:
                            if step._ok:
                                target = waiter._send(step._value)
                            else:
                                # Failure handled by the process; defuse
                                # so the engine does not also crash.
                                step.defused()
                                target = waiter._throw(step._value)
                        except StopIteration as stop:
                            waiter._target = None
                            self.active_process = None
                            waiter.succeed(stop.value)
                            break
                        except BaseException as exc:
                            waiter._target = None
                            self.active_process = None
                            waiter.fail(exc)
                            break
                        if not isinstance(target, Event):
                            self.active_process = None
                            raise SimulationError(
                                f"process {waiter.name!r} yielded a "
                                f"non-event: {target!r}")
                        tcb = target.callbacks
                        if tcb is None:
                            # Already fired and delivered: resume
                            # immediately with it.
                            step = target
                            continue
                        waiter._target = target
                        if not tcb and target._waiter is None:
                            target._waiter = waiter
                        else:
                            tcb.append(waiter._resume)
                        self.active_process = None
                        break
                    # Drop the alias: the sole-ownership recycle below
                    # must see `event` referenced by this frame once.
                    step = None
                    if not callbacks:
                        # Sole-ownership recycle: `event` (a processed
                        # timeout nobody else references) goes back to
                        # the pool with its original empty callback list.
                        if (event._tag == TAG_TIMEOUT
                                and len(timeout_pool) < _TIMEOUT_POOL_MAX
                                and getrefcount(event) == 2):
                            event.callbacks = callbacks
                            timeout_pool.append(event)
                        continue
                    for callback in callbacks:
                        callback(event)
                elif len(callbacks) == 1:
                    callbacks[0](event)
                    if (event._tag == TAG_TIMEOUT
                            and len(timeout_pool) < _TIMEOUT_POOL_MAX
                            and getrefcount(event) == 2):
                        # Timeouts cannot fail, so the unhandled-failure
                        # check below is moot; recycle with the (cleared)
                        # original callback list.
                        del callbacks[:]
                        event.callbacks = callbacks
                        timeout_pool.append(event)
                        continue
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise UnhandledEventFailure(
                        f"event failed and nobody handled it: "
                        f"{event._value!r}"
                    ) from event._value
        finally:
            self._cur_u = bu
            self._cur_u_i = bui
            self._cur_n = bn
            self._cur_n_i = bni
            self._imd = imd
            self._imd_i = imdi

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event._ok:
            # Surface the failure to the caller of run() directly.
            event.defused()
            raise event._value
        raise StopSimulation(event._value)
