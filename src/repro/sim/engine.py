"""The discrete-event simulation engine (event loop).

The engine keeps a priority agenda of (time, priority, sequence, event)
entries. :meth:`Engine.run` pops entries in order, advances the simulated
clock, and invokes event callbacks — which is how processes get resumed.
The engine is fully deterministic: two runs with the same seed and the
same process structure produce identical schedules.

Two scheduling lanes back the agenda:

* a binary heap for events scheduled in the future (or with non-default
  priority), and
* a FIFO *immediate lane* for the dominant case — an event triggered at
  the current time with normal priority (every ``Event.succeed()`` /
  ``Event.fail()`` lands here).

Immediate-lane entries are appended in (time, priority, sequence) order
by construction, so merging the two lanes only ever compares the two
heads; the common succeed→dispatch chain pays O(1) per event instead of
O(log n) heap traffic. ``Engine(fast_path=False)`` disables the lane
and runs the original peek/step loop — kept as the measured baseline
for ``benchmarks/bench_core.py``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Iterable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation, UnhandledEventFailure
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

Infinity = float("inf")

Entry = Tuple[float, int, int, Event]


class PeriodicHandle:
    """Cancellation handle for :meth:`Engine.every`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """Deterministic discrete-event simulation core.

    Time units are abstract; throughout this project they are interpreted
    as **milliseconds** of simulated wall-clock time.
    """

    def __init__(self, initial_time: float = 0.0,
                 fast_path: bool = True) -> None:
        self._now = float(initial_time)
        self._agenda: List[Entry] = []
        self._immediate: Deque[Entry] = deque()
        self._sequence = 0
        self._fast = bool(fast_path)
        self.active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or infinity if none."""
        head = self._head()
        return head[0] if head is not None else Infinity

    def _head(self) -> Optional[Entry]:
        """The next entry across both lanes (without removing it)."""
        agenda = self._agenda
        immediate = self._immediate
        if immediate:
            if agenda and agenda[0] < immediate[0]:
                return agenda[0]
            return immediate[0]
        if agenda:
            return agenda[0]
        return None

    def _pop(self) -> Entry:
        """Remove and return the next entry across both lanes."""
        agenda = self._agenda
        immediate = self._immediate
        if immediate:
            if agenda and agenda[0] < immediate[0]:
                return heapq.heappop(agenda)
            return immediate.popleft()
        return heapq.heappop(agenda)

    # ------------------------------------------------------------------
    # Event factories (convenience so processes write `yield env.timeout(x)`)
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ms."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def at(self, when: float, callback) -> Timeout:
        """Invoke ``callback(engine)`` at absolute simulated time ``when``.

        The hook the fault injector uses for one-shot clock-scoped
        faults; returns the underlying timeout event so callers can
        await or inspect it.
        """
        when = float(when)
        if when < self._now:
            raise ValueError(
                f"at({when}) is in the past (now={self._now})")
        event = self.timeout(when - self._now)
        event.callbacks.append(lambda _event: callback(self))
        return event

    def every(self, interval_ms: float, callback,
              first_delay_ms: Optional[float] = None) -> "PeriodicHandle":
        """Invoke ``callback(engine)`` every ``interval_ms`` until cancelled.

        The periodic backbone of the time-series sampler (and clock
        faults): each firing re-arms the next via a plain timeout, so a
        bounded ``run(until=...)`` simply leaves the final pending
        timeout on the agenda. With ``run(until=None)`` an uncancelled
        periodic keeps the agenda non-empty forever — cancel it first.
        """
        interval_ms = float(interval_ms)
        if interval_ms <= 0:
            raise ValueError(f"interval must be positive, got {interval_ms}")
        handle = PeriodicHandle()

        def _arm(delay: float) -> None:
            event = self.timeout(delay)
            event.callbacks.append(_fire)

        def _fire(_event: Event) -> None:
            if handle.cancelled:
                return
            callback(self)
            if not handle.cancelled:
                _arm(interval_ms)

        _arm(interval_ms if first_delay_ms is None else float(first_delay_ms))
        return handle

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place a triggered event on the agenda ``delay`` ms from now."""
        self._sequence = sequence = self._sequence + 1
        if delay == 0.0 and priority == NORMAL and self._fast:
            # Immediate lane: (time, priority, sequence) is monotonically
            # increasing across appends, so the deque stays key-sorted.
            self._immediate.append((self._now, NORMAL, sequence, event))
        else:
            heapq.heappush(
                self._agenda,
                (self._now + delay, priority, sequence, event))

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda and not self._immediate:
            raise SimulationError("attempt to step an empty agenda")
        when, _priority, _seq, event = self._pop()
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("agenda time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise UnhandledEventFailure(
                f"event failed and nobody handled it: {event._value!r}"
            ) from event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the agenda drains), a number
        (run until that simulated time), or an :class:`Event` (run until
        that event fires, returning its value).

        Clock semantics for a numeric ``until``: when the loop finishes
        normally — the horizon is reached *or* the agenda drains early —
        the clock lands on ``until`` exactly once. A :class:`StopSimulation`
        (or an unhandled failure) leaves the clock at the time of the
        event that raised it; it never jumps ahead to the horizon.
        """
        stop_event: Optional[Event] = None
        horizon = Infinity
        if until is not None:
            if isinstance(until, Event):
                if until.triggered:
                    return until.value
                stop_event = until
                stop_event.callbacks.append(self._stop_on)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} is in the past (now={self._now})")

        try:
            if self._fast:
                self._run_fast(horizon)
            else:
                self._run_legacy(horizon)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) exhausted the agenda before the event fired")
        if horizon is not Infinity and self._now < horizon:
            self._now = horizon
        return None

    def _run_legacy(self, horizon: float) -> None:
        """The original peek/step loop (benchmark baseline)."""
        while self._agenda or self._immediate:
            if self.peek() > horizon:
                return
            self.step()

    def _run_fast(self, horizon: float) -> None:
        """Inlined event loop: merged two-lane pop, direct dispatch.

        Semantically identical to ``_run_legacy`` — it exists to strip
        the per-event method-call and heap overhead off the hot path.
        """
        agenda = self._agenda
        immediate = self._immediate
        heappop = heapq.heappop
        popleft = immediate.popleft
        bounded = horizon is not Infinity
        while True:
            if immediate:
                if agenda and agenda[0] < immediate[0]:
                    entry = heappop(agenda)
                else:
                    entry = popleft()
            elif agenda:
                entry = heappop(agenda)
            else:
                return
            when = entry[0]
            if bounded and when > horizon:
                # Put the entry back: run() may be called again later.
                heapq.heappush(agenda, entry)
                return
            self._now = when
            event = entry[3]
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise UnhandledEventFailure(
                    f"event failed and nobody handled it: {event._value!r}"
                ) from event._value

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event._ok:
            # Surface the failure to the caller of run() directly.
            event.defused()
            raise event._value
        raise StopSimulation(event._value)
