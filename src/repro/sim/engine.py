"""The discrete-event simulation engine (event loop).

The engine keeps a priority agenda of (time, priority, sequence, event)
entries. :meth:`Engine.run` pops entries in order, advances the simulated
clock, and invokes event callbacks — which is how processes get resumed.
The engine is fully deterministic: two runs with the same seed and the
same process structure produce identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation, UnhandledEventFailure
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

Infinity = float("inf")


class Engine:
    """Deterministic discrete-event simulation core.

    Time units are abstract; throughout this project they are interpreted
    as **milliseconds** of simulated wall-clock time.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._agenda: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self.active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or infinity if none."""
        return self._agenda[0][0] if self._agenda else Infinity

    # ------------------------------------------------------------------
    # Event factories (convenience so processes write `yield env.timeout(x)`)
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ms."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place a triggered event on the agenda ``delay`` ms from now."""
        self._sequence += 1
        heapq.heappush(
            self._agenda, (self._now + delay, priority, self._sequence, event))

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("attempt to step an empty agenda")
        when, _priority, _seq, event = heapq.heappop(self._agenda)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("agenda time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise UnhandledEventFailure(
                f"event failed and nobody handled it: {event._value!r}"
            ) from event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the agenda drains), a number
        (run until that simulated time), or an :class:`Event` (run until
        that event fires, returning its value).
        """
        stop_event: Optional[Event] = None
        horizon = Infinity
        if until is not None:
            if isinstance(until, Event):
                if until.triggered:
                    return until.value
                stop_event = until
                stop_event.callbacks.append(self._stop_on)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} is in the past (now={self._now})")

        try:
            while self._agenda:
                if self.peek() > horizon:
                    self._now = horizon
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) exhausted the agenda before the event fired")
        if horizon is not Infinity:
            self._now = horizon
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        if not event._ok:
            # Surface the failure to the caller of run() directly.
            event.defused()
            raise event._value
        raise StopSimulation(event._value)
