"""Timeline tracing: record what ran where, and when.

The tracer collects :class:`Span` records — (lane, name, start, end, meta) —
matching the structure of an nvprof/TF-profiler timeline. The Figure 2 and
Figure 3 reproductions are pure post-processing over these spans, and the
per-device busy/idle accounting used throughout the metrics package is
derived from them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, \
    Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class Span:
    """A closed interval of activity on one timeline lane."""

    lane: str
    name: str
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True if the two spans overlap in time (open-interval test)."""
        return self.start < other.end and other.start < self.end


class OpenSpan:
    """Handle for an in-progress span; call :meth:`close` when done."""

    __slots__ = ("_tracer", "lane", "name", "start", "meta", "_closed")

    def __init__(self, tracer: "Tracer", lane: str, name: str,
                 start: float, meta: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.lane = lane
        self.name = name
        self.start = start
        self.meta = meta
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, end: Optional[float] = None, **extra_meta: Any) -> Span:
        if self._closed:
            raise RuntimeError(f"span {self.name!r} closed twice")
        self._closed = True
        self._tracer._open.pop(id(self), None)
        if end is None:
            end = self._tracer.engine.now
        meta = dict(self.meta)
        meta.update(extra_meta)
        span = Span(self.lane, self.name, self.start, end, meta)
        self._tracer.record(span)
        return span


class Tracer:
    """Collects spans, grouped by lane, in simulation-time order."""

    def __init__(self, engine: "Engine", enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.spans: List[Span] = []
        # In-progress spans, for leak detection: a lane whose span is
        # never closed silently under-counts busy time downstream.
        self._open: Dict[int, OpenSpan] = {}

    def begin(self, lane: str, name: str, **meta: Any) -> OpenSpan:
        """Open a span on ``lane`` starting now."""
        span = OpenSpan(self, lane, name, self.engine.now, meta)
        self._open[id(span)] = span
        return span

    @contextmanager
    def span(self, lane: str, name: str,
             **meta: Any) -> Iterator[OpenSpan]:
        """Scoped span: closed automatically on exit (unless already)."""
        open_span = self.begin(lane, name, **meta)
        try:
            yield open_span
        finally:
            if not open_span.closed:
                open_span.close()

    @property
    def open_spans(self) -> List[OpenSpan]:
        return list(self._open.values())

    def assert_all_closed(self) -> None:
        """Fail loudly if any span was left dangling.

        Experiments should call this after a run: a leaked span means a
        lane's busy time is under-counted, which silently skews every
        busy/idle figure derived from the trace. The leaks are reported
        through the shared analysis Finding model, so they render the
        same way span-leak findings do in a sanitizer report.
        """
        if self._open:
            # Local import: sim is a base layer and must not depend on
            # the analysis package except on this cold error path.
            from repro.analysis.sanitizer import open_span_findings

            dangling = ", ".join(
                f"{f.where}/{s.name}@{f.t_start:.3f}"
                for f, s in zip(open_span_findings(self),
                                self._open.values(), strict=True))
            raise RuntimeError(
                f"{len(self._open)} span(s) never closed: {dangling}")

    def record(self, span: Span) -> None:
        if self.enabled:
            self.spans.append(span)

    def instant(self, lane: str, name: str, **meta: Any) -> None:
        """Record a zero-duration marker."""
        now = self.engine.now
        self.record(Span(lane, name, now, now, meta))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lanes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.lane, None)
        return list(seen)

    def by_lane(self, lane: str) -> List[Span]:
        return [span for span in self.spans if span.lane == lane]

    def busy_time(self, lane: str, start: float = 0.0,
                  end: Optional[float] = None) -> float:
        """Total time ``lane`` had at least one active span in [start, end].

        Overlapping spans are unioned, not double-counted.
        """
        if end is None:
            end = self.engine.now
        intervals = sorted(
            (max(span.start, start), min(span.end, end))
            for span in self.spans
            if span.lane == lane and span.end > start and span.start < end
        )
        busy = 0.0
        cursor = start
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            busy += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        return busy

    def busy_union(self, lanes: Iterable[str], start: float = 0.0,
                   end: Optional[float] = None) -> float:
        """Union busy time over several lanes in ``[start, end]``.

        The profiler's reconciliation target: total time *any* of the
        given lanes had activity, with cross-lane overlap (e.g. a GPU
        kernel concurrent with a PCIe transfer) counted once.
        """
        if end is None:
            end = self.engine.now
        wanted = set(lanes)
        intervals = sorted(
            (max(span.start, start), min(span.end, end))
            for span in self.spans
            if span.lane in wanted and span.end > start and span.start < end
        )
        busy = 0.0
        cursor = start
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            busy += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        return busy

    def open_span_rows(self) -> List[Dict[str, Any]]:
        """Plain-dict snapshot of in-progress spans (flight recorder)."""
        now = self.engine.now
        return [
            {"lane": s.lane, "name": s.name, "start": s.start,
             "open_for_ms": now - s.start,
             "meta": {k: v if isinstance(v, (str, int, float, bool))
                      or v is None else repr(v)
                      for k, v in s.meta.items()}}
            for s in self._open.values()
        ]

    def concurrency_intervals(
            self, lane: str) -> List[Tuple[float, float, int]]:
        """Piecewise-constant count of simultaneously active spans."""
        edges: List[Tuple[float, int]] = []
        for span in self.by_lane(lane):
            if span.duration <= 0:
                continue
            edges.append((span.start, 1))
            edges.append((span.end, -1))
        edges.sort()
        result: List[Tuple[float, float, int]] = []
        level = 0
        previous = None
        for time, delta in edges:
            if previous is not None and time > previous and level > 0:
                result.append((previous, time, level))
            level += delta
            previous = time
        return result

    def to_rows(self) -> List[Dict[str, Any]]:
        """Flatten spans to plain dicts (for CSV/JSON export)."""
        return [
            {"lane": s.lane, "name": s.name, "start": s.start,
             "end": s.end, **s.meta}
            for s in self.spans
        ]


def render_ascii_timeline(spans: Iterable[Span], width: int = 100,
                          start: Optional[float] = None,
                          end: Optional[float] = None) -> str:
    """Render spans as a fixed-width ASCII Gantt chart, one row per lane.

    Used by the Figure 2 reproduction to show kernel serialization between
    two co-running models at a glance. Cells covered by two spans that
    genuinely overlap in time render as ``*`` so concurrency is visible
    even when both spans carry the same glyph.
    """
    spans = [s for s in spans if s.duration > 0]
    if not spans:
        return "(empty timeline)"
    lo = min(s.start for s in spans) if start is None else start
    hi = max(s.end for s in spans) if end is None else end
    if hi <= lo:
        return "(empty timeline)"
    scale = width / (hi - lo)
    lanes: Dict[str, List[Span]] = {}
    for span in spans:
        lanes.setdefault(span.lane, []).append(span)
    label_width = max(len(lane) for lane in lanes) + 1
    lines = []
    for lane, lane_spans in lanes.items():
        row = [" "] * width
        owner: List[Optional[Span]] = [None] * width
        for span in lane_spans:
            first = int((max(span.start, lo) - lo) * scale)
            last = int((min(span.end, hi) - lo) * scale)
            first = min(first, width - 1)
            last = min(max(last, first + 1), width)
            glyph = span.meta.get("glyph", "#")
            for index in range(first, last):
                previous = owner[index]
                if (previous is not None and previous is not span
                        and span.overlaps(previous)):
                    # True temporal overlap, not just two adjacent
                    # spans rounding onto the same cell.
                    row[index] = "*"
                else:
                    row[index] = glyph
                    owner[index] = span
        lines.append(f"{lane:<{label_width}}|{''.join(row)}|")
    # Header: the start label sits at the left edge and the end label
    # flush against the right edge, for any label width.
    left = f"{lo:.1f} ms"
    right = f"{hi:.1f} ms"
    if len(left) + len(right) + 1 <= width:
        ruler = left + " " * (width - len(left) - len(right)) + right
    else:
        ruler = left[:width].ljust(width)
    header = f"{'':<{label_width}}|{ruler}|"
    return "\n".join([header] + lines)
