"""Deterministic discrete-event simulation kernel.

Provides the event loop (:class:`Engine`), generator-based processes,
simulated synchronization primitives, named RNG streams, and timeline
tracing. Simulated time is measured in milliseconds.
"""

from repro.sim.engine import Engine
from repro.sim.errors import (
    EventCancelled,
    Interrupted,
    SimulationError,
    StopSimulation,
    UnhandledEventFailure,
)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Lock, PriorityStore, Semaphore, Store
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import Span, Tracer, render_ascii_timeline

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "EventCancelled",
    "Interrupted",
    "Lock",
    "PriorityStore",
    "Process",
    "RngRegistry",
    "Semaphore",
    "SimulationError",
    "Span",
    "StopSimulation",
    "Store",
    "Timeout",
    "Tracer",
    "UnhandledEventFailure",
    "derive_seed",
    "render_ascii_timeline",
]
