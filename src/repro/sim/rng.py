"""Deterministic random-number streams for experiments.

Every stochastic component draws from a named stream derived from a single
root seed, so adding a new component never perturbs the draws seen by
existing ones — experiment results stay reproducible and comparable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for ``name`` from ``root_seed``, stably."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self.root_seed, name))
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One draw from an exponential distribution with the given mean."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def lognormal_around(self, name: str, center: float, sigma: float) -> float:
        """Multiplicative jitter: draw centered at ``center`` with spread
        ``sigma`` (in log space). Used for per-kernel execution noise."""
        if center <= 0:
            raise ValueError("lognormal center must be positive")
        return center * self.stream(name).lognormvariate(0.0, sigma)
