"""Deterministic random-number streams for experiments.

Every stochastic component draws from a named stream derived from a single
root seed, so adding a new component never perturbs the draws seen by
existing ones — experiment results stay reproducible and comparable.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Iterable, List


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for ``name`` from ``root_seed``, stably."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class JitterStream:
    """Precomputed multiplicative lognormal jitter for one component.

    Hot paths (the executor applies jitter to *every* dispatched node)
    draw multipliers from a refilled batch instead of paying a named
    stream lookup plus ``lognormvariate``'s rejection sampling per call.
    Each stream owns an independent :class:`random.Random`, so the draws
    a component sees depend only on its own name — never on how other
    components interleave with it.
    """

    __slots__ = ("sigma", "_rng", "_buffer", "_batch", "_size")

    def __init__(self, seed: int, sigma: float, batch: int = 256) -> None:
        if sigma < 0:
            raise ValueError("jitter sigma cannot be negative")
        self.sigma = sigma
        self._rng = random.Random(seed)
        self._batch = batch
        # Refills grow geometrically up to ``batch``: components with
        # many streams but few draws per stream (the executor keeps one
        # per graph node) would otherwise pay for hundreds of unused
        # draws each. Batch size never changes the value sequence —
        # ``Random.gauss`` keeps its Box–Muller pair cache on the
        # instance, so draws depend only on their position.
        self._size = 8
        self._buffer: List[float] = []

    def _refill(self) -> None:
        count = self._size
        if count < self._batch:
            self._size = min(count * 4, self._batch)
        gauss = self._rng.gauss
        sigma = self.sigma
        exp = math.exp
        self._buffer = [exp(sigma * gauss(0.0, 1.0))
                        for _ in range(count)]
        # Draws are consumed with pop() (O(1)); reverse so consumption
        # order matches generation order and stays reproducible.
        self._buffer.reverse()

    def next(self) -> float:
        """The next multiplier (mean ~1.0, spread ``sigma`` in log space)."""
        if not self._buffer:
            self._refill()
        return self._buffer.pop()


class RngRegistry:
    """Factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = random.Random(
                derive_seed(self.root_seed, name))
        return stream

    def jitter_stream(self, name: str, sigma: float) -> JitterStream:
        """An independent precomputed jitter stream for ``name``."""
        return JitterStream(derive_seed(self.root_seed, name), sigma)

    def jitter_streams(self, prefix: str, keys: Iterable,
                       sigma: float) -> Dict:
        """Batch-derive one jitter stream per key (``{prefix}:{key}``).

        Components with many jittered entities (the executor keeps one
        stream per graph node) derive them all once at construction
        instead of re-deriving named streams on every draw.
        """
        return {key: self.jitter_stream(f"{prefix}:{key}", sigma)
                for key in keys}

    def exponential(self, name: str, mean: float) -> float:
        """One draw from an exponential distribution with the given mean."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def lognormal_around(self, name: str, center: float, sigma: float) -> float:
        """Multiplicative jitter: draw centered at ``center`` with spread
        ``sigma`` (in log space). Used for per-kernel execution noise."""
        if center <= 0:
            raise ValueError("lognormal center must be positive")
        return center * self.stream(name).lognormvariate(0.0, sigma)
