"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`repro.sim.engine.Engine.run`."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupted(Exception):
    """Thrown into a process that another process interrupted.

    The interrupt ``cause`` is available both as ``exc.cause`` and as
    ``exc.args[0]`` so handlers can dispatch on why they were woken.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupted(cause={self.cause!r})"


class EventCancelled(Exception):
    """Thrown into a process waiting on an event that was cancelled."""

    def __init__(self, reason: Optional[str] = None) -> None:
        super().__init__(reason)
        self.reason = reason


class UnhandledEventFailure(SimulationError):
    """An event failed and no process consumed (defused) the failure."""
