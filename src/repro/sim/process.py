"""Generator-based simulated processes.

A process wraps a Python generator that *yields events*. When a yielded
event triggers, the generator is resumed with the event's value (or the
event's exception is thrown into it). A process is itself an event that
fires when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupted, SimulationError
from repro.sim.events import URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Immediately-scheduled event that starts a freshly created process."""

    __slots__ = ("process",)

    def __init__(self, engine: "Engine", process: "Process") -> None:
        super().__init__(engine)
        self.process = process
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        engine.schedule(self, priority=URGENT)


class Interruption(Event):
    """Urgent event that throws :class:`Interrupted` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.engine)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupted(cause)
        self._defused = True
        self.callbacks.append(self._interrupt)
        self.engine.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            # The process finished between interrupt() and delivery.
            return
        # Unsubscribe the process from whatever it was waiting on so that
        # the stale event does not resume it a second time.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulated activity driven by a generator."""

    __slots__ = ("generator", "_target", "name")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.engine.active_process = self
        while True:
            try:
                if event._ok:
                    target = self.generator.send(event._value)
                else:
                    # The process is handling the failure; defuse it so the
                    # engine does not also crash on it.
                    event.defused()
                    target = self.generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                self.engine.active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                self.engine.active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.engine.active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")

            if target.processed:
                # Already fired and delivered: resume immediately with it.
                event = target
                continue
            if target.triggered:
                # Triggered but not yet processed: wait for delivery to
                # preserve event ordering.
                pass
            self._target = target
            target.callbacks.append(self._resume)
            break
        self.engine.active_process = None

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
