"""Generator-based simulated processes.

A process wraps a Python generator that *yields events*. When a yielded
event triggers, the generator is resumed with the event's value (or the
event's exception is thrown into it). A process is itself an event that
fires when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupted, SimulationError
from repro.sim.events import (
    TAG_INITIALIZE, TAG_INTERRUPTION, TAG_PROCESS, URGENT, Event,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Immediately-scheduled event that starts a freshly created process."""

    __slots__ = ("process",)

    _tag = TAG_INITIALIZE

    def __init__(self, engine: "Engine", process: "Process") -> None:
        super().__init__(engine)
        self.process = process
        self._ok = True
        self._value = None
        if engine._array:
            # Array core: park the process in the waiter slot — no
            # callback list traffic for the universal startup event.
            self._waiter = process
        else:
            self.callbacks.append(process._resume)
        engine.schedule(self, priority=URGENT)


class Interruption(Event):
    """Urgent event that throws :class:`Interrupted` into a process."""

    __slots__ = ("process",)

    _tag = TAG_INTERRUPTION

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.engine)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupted(cause)
        self._defused = True
        self.callbacks.append(self._interrupt)
        self.engine.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            # The process finished between interrupt() and delivery.
            return
        # Unsubscribe the process from whatever it was waiting on so that
        # the stale event does not resume it a second time. The process
        # may be parked in the waiter slot (array core) or registered as
        # a listed callback.
        target = process._target
        if target is not None:
            if target._waiter is process:
                target._waiter = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(process._resume)
                except ValueError:
                    pass
        process._resume(self)


class Process(Event):
    """A running simulated activity driven by a generator."""

    __slots__ = ("generator", "_target", "name", "_send", "_throw")

    _tag = TAG_PROCESS

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self.generator = generator
        # Bound methods cached once: _resume runs once per process step,
        # at agenda rates.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        engine = self.engine
        engine.active_process = self
        array = engine._array
        while True:
            try:
                if event._ok:
                    target = self._send(event._value)
                else:
                    # The process is handling the failure; defuse it so the
                    # engine does not also crash on it.
                    event.defused()
                    target = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                engine.active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                engine.active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                engine.active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")

            callbacks = target.callbacks
            if callbacks is None:
                # Already fired and delivered: resume immediately with it.
                # (Triggered-but-not-processed targets fall through and
                # wait for delivery, preserving event ordering.)
                event = target
                continue
            self._target = target
            if array and not callbacks and target._waiter is None:
                # Array core: park in the direct waiter slot instead of
                # allocating a bound-method callback for this wait.
                target._waiter = self
            else:
                callbacks.append(self._resume)
            break
        engine.active_process = None

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
