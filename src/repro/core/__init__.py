"""SwitchFlow core: run context, jobs, gates, policies, preemption."""

from repro.core.config import ConfigError, SwitchFlowConfig
from repro.core.context import DEFAULT_TEMPORARY_WORKERS, RunContext, make_context
from repro.core.gate import DeviceGate
from repro.core.job import PRIORITY_HIGH, PRIORITY_LOW, JobHandle
from repro.core.policy import ComputeGrant, SchedulingPolicy
from repro.core.switchflow import SwitchFlowPolicy

__all__ = [
    "ComputeGrant",
    "ConfigError",
    "SwitchFlowConfig",
    "DEFAULT_TEMPORARY_WORKERS",
    "DeviceGate",
    "JobHandle",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "RunContext",
    "SchedulingPolicy",
    "SwitchFlowPolicy",
    "make_context",
]
