"""Scheduling policy interface.

Every GPU-sharing strategy in the repo — SwitchFlow and the three
baselines (multi-threaded TF, session-based time slicing, NVIDIA MPS)
— implements this interface. The workload drivers are policy-agnostic:
they call the hooks around each pipeline/compute stage and the policy
decides who waits, who runs where, and who gets preempted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.core.context import RunContext
from repro.core.job import JobHandle
from repro.runtime.session import Session
from repro.runtime.threadpool import ThreadPool
from repro.sim import instrument

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass(frozen=True)
class ComputeGrant:
    """Permission to run a job's compute subgraph right now."""

    device_name: str
    pool: ThreadPool
    #: True when the policy reserved the job's transient memory up front
    #: (the MPS per-process reservation model) so per-run allocation is
    #: skipped.
    preallocated: bool = False


class SchedulingPolicy:
    """Base policy: immediate grants, no gating (subclasses override)."""

    #: True when a session (CPU stage + GPU stage) must execute as one
    #: atomic unit with no cross-iteration prefetch — the semantics of
    #: session-based time slicing. False enables the tf.data-style
    #: producer/consumer pipelining in the drivers.
    fused_sessions = False

    #: True when the policy guarantees no two jobs' compute runs share
    #: one GPU at a time (SwitchFlow's DeviceGate, time slicing's
    #: machine lock). The schedule sanitizer enforces per-GPU cross-job
    #: mutual exclusion only under such policies; sharing-by-design
    #: baselines (multi-threaded TF, MPS) opt out.
    exclusive_gpu = False

    def __init__(self, ctx: RunContext) -> None:
        self.ctx = ctx
        self.jobs: List[JobHandle] = []

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def register_job(self, job: JobHandle) -> None:
        """Admit a job: build its session and pick its initial device."""
        from repro.obs.audit import emit_decision

        pinned = job.preferred_device is not None
        if job.preferred_device is None:
            job.preferred_device = self.default_device(job)
        job.assigned_device = job.preferred_device
        emit_decision(
            self.ctx.runlog, "admit", job=job.name,
            chosen=job.assigned_device,
            considered=[{"device": gpu.name}
                        for gpu in self.ctx.machine.gpus],
            pinned=pinned, priority=job.priority,
            policy=type(self).__name__)
        job.session = Session(
            machine=self.ctx.machine, model=job.model, batch=job.batch,
            training=job.training, job=job.name,
            rendezvous=self.ctx.rendezvous, resources=self.ctx.resources,
            rng=self.ctx.rng, data_workers=job.data_workers)
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.access("policy.jobs", "write",
                           where=f"policy.register/{job.name}",
                           guard="lock:policy.jobs")
        self.jobs.append(job)

    def default_device(self, job: JobHandle) -> str:
        gpus = self.ctx.machine.gpus
        if not gpus:
            return self.ctx.machine.cpu.name
        # Deterministic spread: by registration order.
        return gpus[len(self.jobs) % len(gpus)].name

    def unregister_job(self, job: JobHandle) -> None:
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.access("policy.jobs", "write",
                           where=f"policy.unregister/{job.name}",
                           guard="lock:policy.jobs")
        if job in self.jobs:
            self.jobs.remove(job)
        if job.session is not None:
            job.session.release()

    # ------------------------------------------------------------------
    # Stage hooks (all are process generators unless noted)
    # ------------------------------------------------------------------
    def pool_for(self, job: JobHandle) -> ThreadPool:
        if job.in_temporary_pool:
            return self.ctx.temporary_pool
        return self.ctx.global_pool

    def acquire_pipeline(self, job: JobHandle):
        """Gate before the CPU input-pipeline stage (default: none)."""
        return
        yield  # pragma: no cover - makes this a generator

    def release_pipeline(self, job: JobHandle) -> None:
        return

    def acquire_compute(self, job: JobHandle):
        """Gate before the compute stage; returns a ComputeGrant."""
        yield self.ctx.resources.ensure_state(job.name, job.assigned_device)
        return ComputeGrant(job.assigned_device, self.pool_for(job))

    def release_compute(self, job: JobHandle, grant: ComputeGrant,
                        outcome: str) -> None:
        """Called after the compute stage ends (outcome: the run status)."""
        return

    def on_job_crashed(self, job: JobHandle, reason: str) -> None:
        """Bookkeeping when a job dies (e.g. simulated OOM)."""
        job.stats.crashed = True
        job.stats.crash_reason = reason
