"""Job handles: the scheduler-visible identity of one DL workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.metrics.throughput import JobStats
from repro.models.base import ModelSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.session import Session

# Priorities: smaller is more important (the paper's 1-line-of-code
# priority configuration maps to these).
PRIORITY_HIGH = 0
PRIORITY_LOW = 10


@dataclass
class JobHandle:
    """One DL job as the scheduling policies see it."""

    name: str
    model: ModelSpec
    batch: int
    training: bool
    priority: int = PRIORITY_LOW
    preferred_device: Optional[str] = None    # initial GPU assignment
    data_workers: int = 32

    # Mutable scheduling state.
    assigned_device: Optional[str] = None
    in_temporary_pool: bool = False
    session: Optional["Session"] = None
    stats: JobStats = field(default=None)

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = JobStats(job=self.name, batch=self.batch)

    @property
    def kind(self) -> str:
        return "training" if self.training else "inference"

    def __repr__(self) -> str:
        return (f"<JobHandle {self.name!r} {self.model.name} "
                f"bs={self.batch} {self.kind} prio={self.priority} "
                f"on={self.assigned_device!r}>")
