"""Run context: one simulated machine plus the shared runtime plumbing.

Bundles the engine, machine, rendezvous, resource manager, RNG registry
and the two thread pools of the SwitchFlow design (Figure 4): the
*global* pool shared by all sessions, and the small *temporary* pool
that isolates preempted jobs until preemption completes. Their summed
worker count equals the host core count, as the paper requires.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.graph.cost_model import register_cost_cache_collector
from repro.hw.machine import Machine
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import RunLog
from repro.runtime.rendezvous import Rendezvous
from repro.runtime.resource_manager import ResourceManager
from repro.runtime.threadpool import ThreadPool
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

# Worker threads reserved for the temporary pool (paper: configurable;
# a tradeoff between isolation and preempted-job performance).
DEFAULT_TEMPORARY_WORKERS = 4


class RunContext:
    """Everything a workload driver needs to execute jobs."""

    def __init__(self, machine_factory: Callable[[Engine, Tracer], Machine],
                 seed: int = 0,
                 temporary_workers: int = DEFAULT_TEMPORARY_WORKERS,
                 trace: bool = True,
                 fast_path: bool = True,
                 core: Optional[str] = None) -> None:
        # ``core`` picks the event-loop implementation explicitly
        # ("array", "twolane" or "legacy"); otherwise ``fast_path=False``
        # selects the legacy agenda loop, kept as a semantic-equivalence
        # baseline for the array/two-lane schedulers.
        self.engine = Engine(fast_path=fast_path, core=core)
        self.tracer = Tracer(self.engine, enabled=trace)
        self.metrics = MetricsRegistry(clock=lambda: self.engine.now)
        self.runlog = RunLog(clock=lambda: self.engine.now)
        self.machine = machine_factory(self.engine, self.tracer)
        self.rendezvous = Rendezvous(self.engine)
        self.resources = ResourceManager(self.machine,
                                         metrics=self.metrics,
                                         runlog=self.runlog)
        self.rng = RngRegistry(seed)
        # Fault injector (repro.faults); attach_faults() installs one.
        self.faults = None
        # Windowed metrics sampler (repro.obs.timeseries);
        # attach_timeseries() installs one. None = sampling disabled,
        # which costs nothing anywhere.
        self.timeseries = None
        # Concurrency tracker (repro.analysis.concurrency);
        # attach_concurrency() installs one. None = every runtime hook
        # site pays one global load + None test and nothing else.
        self.concurrency = None
        # Serving-config overrides (repro.serving.config);
        # attach_serving() installs one. None = served-model specs run
        # exactly as the experiment declared them.
        self.serving = None
        # Job handles that ran on this context (filled by the workload
        # harness) — lets post-run analysis like the critical-path
        # profiler reach sessions/executors without a side channel.
        self.jobs = []
        self.metrics.register_collector(self._collect_device_metrics)
        register_cost_cache_collector(self.metrics)

        cores = self.machine.cpu.spec.cores
        # Scale the temporary pool down on small hosts (the TX2 has only
        # four cores); the global pool must keep the lion's share.
        temporary_workers = max(1, min(temporary_workers, cores // 4))
        self.global_pool = ThreadPool(
            self.engine, self.machine.cpu, cores - temporary_workers,
            name="global", rng=self.rng, metrics=self.metrics)
        self.temporary_pool = ThreadPool(
            self.engine, self.machine.cpu, temporary_workers,
            name="temporary", rng=self.rng, metrics=self.metrics)
        # tf.data's private thread pools: each job's input pipeline has
        # its own pool (as each TF instance does), NOT the executor
        # pools. Pipelines of co-located jobs still contend for physical
        # cores through the CpuDevice semaphore — that core-level fight
        # is what slows two co-located pipelines down (Figures 8-10).
        self._data_pools = {}
        self.data_pool = self.data_pool_for("_shared_")

    def data_pool_for(self, job_name: str) -> ThreadPool:
        """The per-job tf.data thread pool (created on first use)."""
        if job_name not in self._data_pools:
            self._data_pools[job_name] = ThreadPool(
                self.engine, self.machine.cpu,
                self.machine.cpu.spec.data_workers,
                name=f"data/{job_name}", rng=self.rng,
                metrics=self.metrics)
        return self._data_pools[job_name]

    def _collect_device_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-style gauges mirroring per-device runtime state.

        Registered as a registry collector so the hot paths (kernel
        admission, allocation) pay nothing; the gauges refresh whenever
        metrics are read.
        """
        now = self.engine.now
        for gpu in self.machine.gpus:
            device = gpu.name
            busy = gpu.busy_ms_until(now)
            registry.gauge("gpu.busy_ms", device=device).set(busy)
            registry.gauge("gpu.busy_fraction", device=device).set(
                busy / now if now > 0 else 0.0)
            registry.gauge("gpu.kernels_total", device=device).set(
                gpu.kernels_completed)
            registry.gauge("gpu.context_switches_total",
                           device=device).set(gpu.context_switches)
            registry.gauge("mem.used_bytes", device=device).set(
                gpu.memory.used_bytes)
            registry.gauge("mem.high_water_bytes", device=device).set(
                gpu.memory.high_water_mark)
            registry.gauge("mem.oom_total", device=device).set(
                gpu.memory.oom_events)

    def attach_faults(self, plan):
        """Install a fault plan: build the injector, mirror it on the
        machine (for executor/resource-manager hooks) and arm its
        clock-scoped faults. Returns the injector."""
        if self.faults is not None:
            raise RuntimeError("faults already attached to this context")
        # Local import: repro.faults sits above core in the layering.
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(self, plan)
        self.faults = injector
        self.machine.faults = injector
        injector.arm()
        return injector

    def attach_timeseries(self, interval_ms: float = 100.0,
                          capacity: int = 512):
        """Start windowed metrics sampling; returns the sampler.

        Off by default: until this is called no periodic process exists
        and no instrument pays any sampling cost.
        """
        if self.timeseries is not None:
            raise RuntimeError("timeseries already attached to this context")
        # Local import: obs.timeseries reads core-owned surfaces only.
        from repro.obs.timeseries import TimeSeriesSampler

        sampler = TimeSeriesSampler(self.engine, self.metrics,
                                    interval_ms=interval_ms,
                                    capacity=capacity)
        self.timeseries = sampler.start()
        return sampler

    def attach_concurrency(self, mode: str = "hb"):
        """Install the happens-before/lockset/deadlock tracker.

        ``mode="hb"`` is the full vector-clock race detector;
        ``mode="lockset"`` the cheaper lockset+deadlock-only pass.
        Installing hooks the runtime's instrumentation sites process-
        wide, replacing any tracker a previous context attached (one
        context is analyzed at a time). Returns the tracker.
        """
        if self.concurrency is not None:
            raise RuntimeError("concurrency already attached to this context")
        # Local import: repro.analysis sits above core in the layering.
        from repro.analysis.concurrency import ConcurrencyTracker

        tracker = ConcurrencyTracker(self.engine, mode=mode,
                                     runlog=self.runlog, ctx=self)
        tracker.install()
        self.concurrency = tracker
        return tracker

    def attach_serving(self, config):
        """Install serving-config overrides (a
        :class:`~repro.serving.config.ServingConfig`); every
        :func:`~repro.serving.frontend.run_serving` call on this
        context applies them to its served-model specs. Returns the
        config."""
        if self.serving is not None:
            raise RuntimeError("serving already attached to this context")
        self.serving = config
        return config

    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, until: Optional[object] = None):
        """Drive the simulation (delegates to the engine)."""
        return self.engine.run(until=until)


def make_context(machine_builder, *args, seed: int = 0,
                 trace: bool = True,
                 temporary_workers: int = DEFAULT_TEMPORARY_WORKERS,
                 fast_path: bool = True,
                 core: Optional[str] = None,
                 fault_plan=None,
                 timeseries_interval_ms: Optional[float] = None,
                 concurrency: Optional[str] = None,
                 serving=None,
                 **kwargs) -> RunContext:
    """Convenience: ``make_context(v100_server, n_gpus=1, seed=1)``."""
    def factory(engine: Engine, tracer: Tracer) -> Machine:
        return machine_builder(engine, *args, tracer=tracer, **kwargs)
    ctx = RunContext(factory, seed=seed, trace=trace,
                     temporary_workers=temporary_workers,
                     fast_path=fast_path, core=core)
    if fault_plan is not None:
        ctx.attach_faults(fault_plan)
    if timeseries_interval_ms is not None:
        ctx.attach_timeseries(interval_ms=timeseries_interval_ms)
    if concurrency is not None:
        ctx.attach_concurrency(mode=concurrency)
    if serving is not None:
        ctx.attach_serving(serving)
    return ctx
