"""The SwitchFlow scheduling policy (Sections 3.2-3.4).

Implements the paper's two invariants plus its preemption protocol:

1. **GPU exclusivity** — a per-GPU :class:`DeviceGate` ensures no two
   jobs' compute executors run on one GPU simultaneously. This is what
   eliminates interference and OOM: a job sees the full device.
2. **Free everything else** — CPU pipeline stages and executors on
   *other* devices are never gated, so one job's preprocessing overlaps
   another job's GPU compute.

Preemption: when a higher-priority job requests a GPU held by a
lower-priority one, SwitchFlow aborts the victim's in-flight run
(queued nodes revoked, dispatched kernels drain — the only critical-path
cost), reassigns the victim to an alternative executor version on a
different GPU (or the CPU/MKL fallback), and moves it to the temporary
thread pool until preemption completes. The victim's model state follows
asynchronously over PCIe, off the preemptor's critical path; the source
copy is retained until the transfer lands (the Table 1 tradeoff).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, List, Optional

from repro.core.context import RunContext
from repro.core.gate import DeviceGate
from repro.core.job import JobHandle
from repro.core.policy import ComputeGrant, SchedulingPolicy
from repro.faults.recovery import MigrationFailedError
from repro.runtime.threadpool import ThreadPool


def emit_decision(runlog, kind, **fields):
    """Deferred :func:`repro.obs.audit.emit_decision` (keeps the audit
    module importable as ``python -m repro.obs.audit`` without tripping
    runpy's already-imported warning through this module)."""
    from repro.obs import audit

    return audit.emit_decision(runlog, kind, **fields)


class SwitchFlowPolicy(SchedulingPolicy):
    """Preemptive, executor-granular GPU sharing."""

    fused_sessions = False
    # The DeviceGate is exactly the paper's §3.2 exclusivity invariant;
    # the sanitizer holds SwitchFlow runs to it.
    exclusive_gpu = True

    def __init__(self, ctx: RunContext,
                 allow_cpu_fallback: bool = True) -> None:
        super().__init__(ctx)
        self.allow_cpu_fallback = allow_cpu_fallback
        self.gates: Dict[str, DeviceGate] = {
            gpu.name: DeviceGate(ctx.engine, gpu.name,
                                 metrics=ctx.metrics,
                                 runlog=ctx.runlog)
            for gpu in ctx.machine.gpus}
        self.preemptions = 0

    # ------------------------------------------------------------------
    # Compute gating
    # ------------------------------------------------------------------
    def acquire_compute(self, job: JobHandle):
        cpu_name = self.ctx.machine.cpu.name
        while True:
            device = job.assigned_device
            if device == cpu_name:
                # Migrated to the MKL fallback: no device gate; stays in
                # the temporary pool so it cannot exhaust the global
                # workers.
                try:
                    yield self.ctx.resources.ensure_state(
                        job.name, cpu_name)
                except MigrationFailedError as exc:
                    self._readmit(job, cpu_name, exc)
                    continue
                return ComputeGrant(cpu_name, self.ctx.temporary_pool)

            gate = self.gates[device]
            victim = gate.holder
            # Split acquire/release protocol: the happy-path release
            # lives in release_compute(), which the session driver
            # guarantees to call for every grant.
            request = gate.request(job)  # noqa: repro-analysis
            if (not request.triggered and victim is not None
                    and victim is not job
                    and victim.priority > job.priority):
                if self._degraded(device):
                    # On a degraded device preemption is suppressed:
                    # jobs fall back to time-slicing through the gate's
                    # FIFO. Auditable — it's a decision NOT to act.
                    emit_decision(
                        self.ctx.runlog, "preempt_suppressed",
                        job=job.name, device=device, victim=victim.name,
                        requester_priority=job.priority,
                        victim_priority=victim.priority,
                        reason="device degraded")
                else:
                    # Launch preemption; the gate hand-off happens at
                    # the victim's release, overlapping abort with our
                    # own prep.
                    self.ctx.engine.process(
                        self._preempt(victim, device, requester=job),
                        name=f"preempt/{victim.name}")
            yield request
            # Materialize (or migrate in) our weights. For a job that
            # was itself migrated here, this is the asynchronous state
            # transfer — which fault plans may fail; after exhausted
            # retries the job is re-admitted where its state still
            # lives.
            try:
                yield self.ctx.resources.ensure_state(job.name, device)
            except MigrationFailedError as exc:
                if gate.holder is job:
                    gate.release(job)
                else:
                    gate.withdraw(job)
                self._readmit(job, device, exc)
                continue
            return ComputeGrant(device, self.pool_for(job))

    def release_compute(self, job: JobHandle, grant: ComputeGrant,
                        outcome: str) -> None:
        if grant.device_name in self.gates:
            gate = self.gates[grant.device_name]
            if gate.holder is job:
                gate.release(job)
            else:
                gate.withdraw(job)
        if (outcome == "completed" and job.in_temporary_pool
                and job.assigned_device != self.ctx.machine.cpu.name):
            # Preemption is over and the job completed a run on its new
            # GPU: back to the global pool (Section 3.3).
            job.in_temporary_pool = False

    # ------------------------------------------------------------------
    # Fault recovery (repro.faults)
    # ------------------------------------------------------------------
    def _degraded(self, device: str) -> bool:
        injector = self.ctx.faults
        return (injector is not None
                and injector.degradation.is_degraded(device))

    def _readmit(self, job: JobHandle, failed_device: str,
                 failure: MigrationFailedError) -> None:
        """Send a stranded victim back to where its state still lives.

        Runs when a preemption-induced migration exhausted its transfer
        retries: the destination copy was abandoned, so the only
        consistent placement is the device holding the surviving state
        copy (the source retained by the Table 1 tradeoff).
        """
        home = self.ctx.resources.state_of(job.name).device
        job.assigned_device = home
        emit_decision(
            self.ctx.runlog, "readmit", job=job.name, chosen=home,
            rejected=[{"device": failed_device,
                       "why": "state transfer failed"}],
            reason=str(failure))
        self.ctx.metrics.counter(
            "sched.readmissions", "victims re-admitted after a failed "
            "migration", job=job.name, device=home).inc()
        # The sanitizer reads this record as a scheduling decision that
        # legitimately returns the victim to a contested device.
        self.ctx.runlog.emit("victim_readmitted", job=job.name,
                             device=home, failed_device=failed_device)
        self.ctx.tracer.instant("scheduler", "victim_readmitted",
                                job=job.name, device=home,
                                failed_device=failed_device)
        injector = self.ctx.faults
        if injector is not None:
            injector.record_recovery(
                "migration", failure.elapsed_ms, job=job.name,
                device=home, failed_device=failed_device)

    def spurious_preempt(self, device_pattern: str = "*") -> List[str]:
        """Inject a preemption with no requester behind it.

        Called by the fault injector's clock faults; aborts the current
        holder of every matching, non-degraded gate exactly as a real
        preemption would. Returns the devices where one was launched.
        """
        launched: List[str] = []
        for name, gate in self.gates.items():
            if not fnmatchcase(name, device_pattern):
                continue
            holder = gate.holder
            if holder is None or self._degraded(name):
                continue
            self.ctx.engine.process(
                self._preempt(holder, name),
                name=f"spurious-preempt/{holder.name}")
            launched.append(name)
        return launched

    # ------------------------------------------------------------------
    # Preemption protocol
    # ------------------------------------------------------------------
    def _preempt(self, victim: JobHandle, device: str,
                 requester: Optional[JobHandle] = None):
        self.preemptions += 1
        victim.stats.preemptions += 1
        target, rejected = self._migration_target(victim, device)
        gate = self.gates[device]
        decision = emit_decision(
            self.ctx.runlog,
            "spurious_preempt" if requester is None else "preempt",
            job=requester.name if requester is not None else victim.name,
            device=device, chosen=target, rejected=rejected,
            victim=victim.name, victim_priority=victim.priority,
            requester=requester.name if requester is not None else None,
            requester_priority=(requester.priority
                                if requester is not None else None),
            queue_depth=len(gate.waiting_jobs))
        victim.assigned_device = target
        victim.in_temporary_pool = True
        victim.stats.migrations += 1
        metrics = self.ctx.metrics
        metrics.counter("sched.preemptions", "preemption decisions",
                        victim=victim.name, device=device).inc()
        metrics.counter("sched.migrations", "executor migrations",
                        job=victim.name, to_device=target).inc()
        self.ctx.runlog.emit(
            "preempt", victim=victim.name, from_device=device,
            to_device=target, decision=decision,
            in_temporary_pool=victim.in_temporary_pool)
        self.ctx.tracer.instant(
            "scheduler", "preempt", victim=victim.name,
            from_device=device, to_device=target)
        injector = self.ctx.faults
        if injector is not None:
            # Arm any crash-on-preemption faults for this victim.
            injector.on_preemption(victim.name, device)
        decided_at = self.ctx.engine.now
        if victim.session is not None:
            # Abort queued nodes; in-flight kernels drain. This is the
            # only part on the preemptor's critical path.
            yield from victim.session.abort_gpu_stage()
        metrics.histogram(
            "sched.abort_ms",
            "victim abort latency (queued revoke + in-flight drain)",
            victim=victim.name).observe(self.ctx.engine.now - decided_at)
        self.ctx.runlog.emit(
            "abort_complete", victim=victim.name, decision=decision,
            drain_ms=self.ctx.engine.now - decided_at)

    def _migration_target(self, victim: JobHandle, device: str):
        """Pick the victim's destination: best other GPU, else CPU.

        Candidates are scored by the cost of routing the victim's state
        from the contested device — a same-node GPU (one PCIe/NVLink
        hop) always beats one behind the network — then by speed.
        Returns ``(target, rejected)`` where ``rejected`` lists every
        alternative that lost, with the reason — the audit trail for
        the migration half of a preemption decision.
        """
        machine = self.ctx.machine
        needed = victim.session.peak_memory_bytes if victim.session else 0
        try:
            state = self.ctx.resources.state_of(victim.name)
            state_bytes, state_tensors = state.nbytes, state.n_tensors
        except KeyError:
            state_bytes, state_tensors = 0, 1
        candidates = []
        rejected: List[Dict[str, str]] = []
        for gpu in machine.gpus:
            if gpu.name == device:
                continue
            if self._degraded(gpu.name):
                # Graceful degradation: never migrate a victim onto a
                # device that keeps faulting.
                rejected.append({"device": gpu.name, "why": "degraded"})
                continue
            gate = self.gates[gpu.name]
            held_by_higher = (gate.holder is not None
                              and gate.holder.priority <= victim.priority)
            free = gpu.memory.free_bytes
            if free < needed:
                rejected.append({
                    "device": gpu.name,
                    "why": f"memory ({free} free < {needed} needed)"})
                continue
            route_cost = machine.route_cost_ms(
                device, gpu.name, state_bytes, state_tensors)
            candidates.append((held_by_higher, route_cost,
                               -gpu.spec.peak_fp32_tflops, gpu.name))
        if candidates:
            # Prefer an unheld gate, then the cheapest state route
            # (same-node before cross-node), then the fastest GPU. On a
            # single machine every route is the same one-hop link, so
            # the ordering (and the audit reasons) reduce to the
            # pre-topology behavior.
            candidates.sort()
            best_cost = candidates[0][1]
            rejected.extend(
                {"device": name,
                 "why": ("held by higher priority" if held
                         else f"route cost {cost:.3f}ms > "
                              f"{best_cost:.3f}ms to "
                              f"{candidates[0][3]}"
                         if cost > best_cost
                         else "slower than chosen")}
                for held, cost, _tflops, name in candidates[1:])
            return candidates[0][3], rejected
        if self.allow_cpu_fallback:
            return self.ctx.machine.cpu.name, rejected
        # Nowhere to go: stay (will queue behind preemptor).
        rejected.append({"device": self.ctx.machine.cpu.name,
                         "why": "cpu fallback disabled"})
        return device, rejected
