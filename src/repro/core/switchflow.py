"""The SwitchFlow scheduling policy (Sections 3.2-3.4).

Implements the paper's two invariants plus its preemption protocol:

1. **GPU exclusivity** — a per-GPU :class:`DeviceGate` ensures no two
   jobs' compute executors run on one GPU simultaneously. This is what
   eliminates interference and OOM: a job sees the full device.
2. **Free everything else** — CPU pipeline stages and executors on
   *other* devices are never gated, so one job's preprocessing overlaps
   another job's GPU compute.

Preemption: when a higher-priority job requests a GPU held by a
lower-priority one, SwitchFlow aborts the victim's in-flight run
(queued nodes revoked, dispatched kernels drain — the only critical-path
cost), reassigns the victim to an alternative executor version on a
different GPU (or the CPU/MKL fallback), and moves it to the temporary
thread pool until preemption completes. The victim's model state follows
asynchronously over PCIe, off the preemptor's critical path; the source
copy is retained until the transfer lands (the Table 1 tradeoff).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.context import RunContext
from repro.core.gate import DeviceGate
from repro.core.job import JobHandle
from repro.core.policy import ComputeGrant, SchedulingPolicy
from repro.runtime.threadpool import ThreadPool


class SwitchFlowPolicy(SchedulingPolicy):
    """Preemptive, executor-granular GPU sharing."""

    fused_sessions = False
    # The DeviceGate is exactly the paper's §3.2 exclusivity invariant;
    # the sanitizer holds SwitchFlow runs to it.
    exclusive_gpu = True

    def __init__(self, ctx: RunContext,
                 allow_cpu_fallback: bool = True) -> None:
        super().__init__(ctx)
        self.allow_cpu_fallback = allow_cpu_fallback
        self.gates: Dict[str, DeviceGate] = {
            gpu.name: DeviceGate(ctx.engine, gpu.name,
                                 metrics=ctx.metrics)
            for gpu in ctx.machine.gpus}
        self.preemptions = 0

    # ------------------------------------------------------------------
    # Compute gating
    # ------------------------------------------------------------------
    def acquire_compute(self, job: JobHandle):
        device = job.assigned_device
        cpu_name = self.ctx.machine.cpu.name
        if device == cpu_name:
            # Migrated to the MKL fallback: no device gate; stays in the
            # temporary pool so it cannot exhaust the global workers.
            yield self.ctx.resources.ensure_state(job.name, cpu_name)
            return ComputeGrant(cpu_name, self.ctx.temporary_pool)

        gate = self.gates[device]
        victim = gate.holder
        request = gate.request(job)
        if (not request.triggered and victim is not None
                and victim is not job
                and victim.priority > job.priority):
            # Launch preemption; the gate hand-off happens at the
            # victim's release, overlapping abort with our own prep.
            self.ctx.engine.process(
                self._preempt(victim, device),
                name=f"preempt/{victim.name}")
        yield request
        # Materialize (or migrate in) our weights. For a job that was
        # itself migrated here, this is the asynchronous state transfer.
        yield self.ctx.resources.ensure_state(job.name, device)
        return ComputeGrant(device, self.pool_for(job))

    def release_compute(self, job: JobHandle, grant: ComputeGrant,
                        outcome: str) -> None:
        if grant.device_name in self.gates:
            gate = self.gates[grant.device_name]
            if gate.holder is job:
                gate.release(job)
            else:
                gate.withdraw(job)
        if (outcome == "completed" and job.in_temporary_pool
                and job.assigned_device != self.ctx.machine.cpu.name):
            # Preemption is over and the job completed a run on its new
            # GPU: back to the global pool (Section 3.3).
            job.in_temporary_pool = False

    # ------------------------------------------------------------------
    # Preemption protocol
    # ------------------------------------------------------------------
    def _preempt(self, victim: JobHandle, device: str):
        self.preemptions += 1
        victim.stats.preemptions += 1
        target = self._migration_target(victim, device)
        victim.assigned_device = target
        victim.in_temporary_pool = True
        victim.stats.migrations += 1
        metrics = self.ctx.metrics
        metrics.counter("sched.preemptions", "preemption decisions",
                        victim=victim.name, device=device).inc()
        metrics.counter("sched.migrations", "executor migrations",
                        job=victim.name, to_device=target).inc()
        self.ctx.runlog.emit(
            "preempt", victim=victim.name, from_device=device,
            to_device=target,
            in_temporary_pool=victim.in_temporary_pool)
        self.ctx.tracer.instant(
            "scheduler", "preempt", victim=victim.name,
            from_device=device, to_device=target)
        decided_at = self.ctx.engine.now
        if victim.session is not None:
            # Abort queued nodes; in-flight kernels drain. This is the
            # only part on the preemptor's critical path.
            yield from victim.session.abort_gpu_stage()
        metrics.histogram(
            "sched.abort_ms",
            "victim abort latency (queued revoke + in-flight drain)",
            victim=victim.name).observe(self.ctx.engine.now - decided_at)
        self.ctx.runlog.emit(
            "abort_complete", victim=victim.name,
            drain_ms=self.ctx.engine.now - decided_at)

    def _migration_target(self, victim: JobHandle, device: str) -> str:
        """Pick the victim's destination: best other GPU, else CPU."""
        needed = victim.session.peak_memory_bytes if victim.session else 0
        candidates = []
        for gpu in self.ctx.machine.gpus:
            if gpu.name == device:
                continue
            gate = self.gates[gpu.name]
            held_by_higher = (gate.holder is not None
                              and gate.holder.priority <= victim.priority)
            free = gpu.memory.free_bytes
            if free < needed:
                continue
            candidates.append((held_by_higher, -gpu.spec.peak_fp32_tflops,
                               gpu.name))
        if candidates:
            # Prefer an unheld gate, then the fastest GPU.
            candidates.sort()
            return candidates[0][2]
        if self.allow_cpu_fallback:
            return self.ctx.machine.cpu.name
        return device  # nowhere to go: stay (will queue behind preemptor)
