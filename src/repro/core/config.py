"""Environment-variable style configuration (the paper's Listing 1).

The SwitchFlow prototype is configured through ``TF_*`` environment
variables: one line enables input reuse, and a handful of variables
link secondary models' input placeholders to the master model's. This
module reproduces that exact user surface so the paper's launch.py
pattern works verbatim against the reproduction::

    env = {
        "TF_SET_REUSE_INPUTS": "True",
        "TF_REUSE_INPUT_OP_NAME_MASTER_X": "X00",
        "TF_REUSE_INPUT_OP_NAME_MASTER_y": "y00",
        "TF_REUSE_INPUT_OPS_NAME_SUB_X": "X01",
        "TF_REUSE_INPUT_OPS_NAME_SUB_y": "y01",
    }
    config = SwitchFlowConfig.from_env(env)
    assert config.reuse_inputs
    assert config.input_links == {"X01": "X00", "y01": "y00"}

It also carries the two knobs the paper says take "1 line" and
"4 lines" of user code: job priority and GPU-executor exclusivity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

ENV_REUSE_FLAG = "TF_SET_REUSE_INPUTS"
ENV_MASTER_PREFIX = "TF_REUSE_INPUT_OP_NAME_MASTER_"
ENV_SUB_PREFIX = "TF_REUSE_INPUT_OPS_NAME_SUB_"
ENV_PRIORITY_PREFIX = "TF_JOB_PRIORITY_"
ENV_EXCLUSIVE_GPU = "TF_EXCLUSIVE_GPU_EXECUTOR"

_TRUTHY = {"true", "1", "yes", "on"}


class ConfigError(ValueError):
    """Malformed SwitchFlow configuration."""


@dataclass
class SwitchFlowConfig:
    """Parsed SwitchFlow user configuration."""

    #: Master switch for input sharing (Listing 1 line 2).
    reuse_inputs: bool = False
    #: secondary placeholder name -> master placeholder name.
    input_links: Dict[str, str] = field(default_factory=dict)
    #: job name -> priority (smaller = more important).
    priorities: Dict[str, int] = field(default_factory=dict)
    #: One-GPU-executor-at-a-time invariant (defaults on; the paper's
    #: "4 LOCs to restrict one GPU executor at a time").
    exclusive_gpu_executor: bool = True

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None
                 ) -> "SwitchFlowConfig":
        """Parse a Listing 1 style environment mapping.

        ``env`` defaults to ``os.environ``. Master/secondary variables
        are matched by their suffix (the ``_X`` / ``_y`` in Listing 1);
        a secondary suffix without a master counterpart is an error.
        """
        if env is None:
            env = os.environ
        config = cls()
        config.reuse_inputs = (
            env.get(ENV_REUSE_FLAG, "").strip().lower() in _TRUTHY)
        config.exclusive_gpu_executor = (
            env.get(ENV_EXCLUSIVE_GPU, "true").strip().lower() in _TRUTHY)

        masters: Dict[str, str] = {}
        subs: Dict[str, str] = {}
        for key, value in env.items():
            if key.startswith(ENV_MASTER_PREFIX):
                masters[key[len(ENV_MASTER_PREFIX):]] = value.strip()
            elif key.startswith(ENV_SUB_PREFIX):
                subs[key[len(ENV_SUB_PREFIX):]] = value.strip()
            elif key.startswith(ENV_PRIORITY_PREFIX):
                job = key[len(ENV_PRIORITY_PREFIX):]
                try:
                    config.priorities[job] = int(value)
                except ValueError as exc:
                    raise ConfigError(
                        f"{key}={value!r} is not an integer priority"
                    ) from exc

        for suffix, sub_name in subs.items():
            if suffix not in masters:
                raise ConfigError(
                    f"secondary input {sub_name!r} (suffix {suffix!r}) "
                    f"has no master counterpart "
                    f"({ENV_MASTER_PREFIX}{suffix} is unset)")
            config.input_links[sub_name] = masters[suffix]

        if config.input_links and not config.reuse_inputs:
            raise ConfigError(
                f"input links configured but {ENV_REUSE_FLAG} is not set")
        return config

    def priority_of(self, job: str, default: int = 10) -> int:
        return self.priorities.get(job, default)

    def to_env(self) -> Dict[str, str]:
        """Serialize back to the environment form (round-trips)."""
        env: Dict[str, str] = {}
        if self.reuse_inputs:
            env[ENV_REUSE_FLAG] = "True"
        if not self.exclusive_gpu_executor:
            env[ENV_EXCLUSIVE_GPU] = "False"
        for index, (sub, master) in enumerate(self.input_links.items()):
            suffix = f"t{index}"
            env[f"{ENV_MASTER_PREFIX}{suffix}"] = master
            env[f"{ENV_SUB_PREFIX}{suffix}"] = sub
        env.update({f"{ENV_PRIORITY_PREFIX}{job}": str(priority)
                    for job, priority in self.priorities.items()})
        return env
