"""Device gates: priority-ordered mutual exclusion for one device.

A gate serializes GPU executors on a device — SwitchFlow's first
scheduling invariant ("no two GPU executors are scheduled on a single
GPU simultaneously", Section 3.4). Waiters are served by (priority,
arrival) order; the holder is tracked so a preemption decision can find
its victim. The gate itself never aborts anything: preemption revokes
the victim's *work* (executor abort) and the gate hand-off then happens
at the victim's regular release.

When built with a :class:`~repro.obs.metrics.MetricsRegistry`, every
grant observes the requester's wait into the ``sched.gate_wait_ms``
histogram (labels: device, job) and the queue depth is mirrored into
the ``gate.queue_depth`` gauge — the raw material for the paper's
tail-latency analysis.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.job import JobHandle
from repro.sim import instrument
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runlog import RunLog
    from repro.sim.engine import Engine

_seq = itertools.count(1)

# (priority, sequence, request event, job, enqueue time)
_Waiter = Tuple[int, int, Event, JobHandle, float]


class DeviceGate:
    """Priority mutex over one device's compute executors."""

    def __init__(self, engine: "Engine", device_name: str,
                 metrics: Optional["MetricsRegistry"] = None,
                 runlog: Optional["RunLog"] = None) -> None:
        self.engine = engine
        self.device_name = device_name
        self.metrics = metrics
        # With a runlog attached, every *contended* grant leaves a
        # ``gate_wait`` record — the interval source the critical-path
        # profiler attributes blocked time from. Uncontended grants
        # (wait == 0) are the overwhelming majority and carry no
        # information, so they are not logged.
        self.runlog = runlog
        self.holder: Optional[JobHandle] = None
        self._waiters: List[_Waiter] = []
        self.grants = 0

    @property
    def waiting_jobs(self) -> List[JobHandle]:
        return [entry[3] for entry in sorted(self._waiters,
                                             key=lambda e: (e[0], e[1]))]

    def _observe_grant(self, job: JobHandle, wait_ms: float) -> None:
        self.grants += 1
        if self.metrics is not None:
            self.metrics.counter(
                "gate.grants_total", "gate grants",
                device=self.device_name).inc()
            self.metrics.histogram(
                "sched.gate_wait_ms", "time from gate request to grant",
                device=self.device_name, job=job.name).observe(wait_ms)
        if self.runlog is not None and wait_ms > 0:
            self.runlog.emit("gate_wait", device=self.device_name,
                             job=job.name, wait_ms=round(wait_ms, 6))

    def _note_queue_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "gate.queue_depth", "jobs queued on the device gate",
                device=self.device_name).set(len(self._waiters))

    def request(self, job: JobHandle) -> Event:
        """Event that fires when ``job`` holds the gate."""
        request = Event(self.engine)
        if self.holder is None and not self._waiters:
            self.holder = job
            self._observe_grant(job, 0.0)
            request.succeed(self.device_name)
        else:
            self._waiters.append(
                (job.priority, next(_seq), request, job, self.engine.now))
            self._note_queue_depth()
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_gate_request(self, request)
        return request

    def release(self, job: JobHandle) -> None:
        """Release by the current holder; grants the best waiter."""
        if self.holder is not job:
            raise RuntimeError(
                f"{job.name} released gate {self.device_name} held by "
                f"{self.holder.name if self.holder else None}")
        tracker = instrument.TRACKER
        if tracker is not None:
            tracker.on_gate_release(self)
        self.holder = None
        while self._waiters:
            self._waiters.sort(key=lambda entry: (entry[0], entry[1]))
            _prio, _seq_no, request, waiter, enqueued = \
                self._waiters.pop(0)
            if request.triggered:
                continue  # cancelled/abandoned request
            self.holder = waiter
            self._observe_grant(waiter, self.engine.now - enqueued)
            self._note_queue_depth()
            request.succeed(self.device_name)
            return
        self._note_queue_depth()

    def withdraw(self, job: JobHandle) -> None:
        """Remove any queued (ungranted) requests from ``job``."""
        removed = [entry for entry in self._waiters if entry[3] is job]
        self._waiters = [entry for entry in self._waiters
                         if entry[3] is not job]
        self._note_queue_depth()
        if removed:
            tracker = instrument.TRACKER
            if tracker is not None:
                for entry in removed:
                    tracker.on_gate_withdraw(self, entry[2])

    def __repr__(self) -> str:
        holder = self.holder.name if self.holder else None
        return (f"<DeviceGate {self.device_name!r} holder={holder!r} "
                f"waiting={len(self._waiters)}>")
