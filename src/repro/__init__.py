"""SwitchFlow reproduction: preemptive multitasking for deep learning.

A full reimplementation of the Middleware '21 SwitchFlow system on a
deterministic discrete-event substrate: a TF-like static-graph runtime
(sessions, executors, thread pools), simulated GPUs/CPUs/PCIe, the
SwitchFlow scheduler with low-latency preemption and executor
migration, and the paper's three baselines.

Quickstart::

    from repro import (JobHandle, JobSpec, SwitchFlowPolicy,
                       get_model, make_context, run_colocation)
    from repro.hw import v100_server

    ctx = make_context(v100_server, 1, seed=0)
    gpu = ctx.machine.gpu(0).name
    train = JobHandle("train", get_model("VGG16"), batch=32,
                      training=True, priority=10, preferred_device=gpu)
    infer = JobHandle("serve", get_model("ResNet50"), batch=1,
                      training=False, priority=0, preferred_device=gpu)
    result = run_colocation(ctx, SwitchFlowPolicy, [
        JobSpec(job=train, iterations=10_000, background=True),
        JobSpec(job=infer, iterations=100, start_delay_ms=1000.0),
    ])
    print(result.latency_summary("serve"))
"""

from repro.baselines import MPSPolicy, MultiThreadedTF, SessionTimeSlicing
from repro.core import (
    JobHandle,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    RunContext,
    SchedulingPolicy,
    SwitchFlowPolicy,
    make_context,
)
from repro.metrics import JobStats, LatencySummary, improvement_percent
from repro.models import ModelSpec, get_model, model_names
from repro.workloads import (
    JobSpec,
    run_colocation,
    run_multitask,
)

__version__ = "1.0.0"

__all__ = [
    "JobHandle",
    "JobSpec",
    "JobStats",
    "LatencySummary",
    "MPSPolicy",
    "ModelSpec",
    "MultiThreadedTF",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "RunContext",
    "SchedulingPolicy",
    "SessionTimeSlicing",
    "SwitchFlowPolicy",
    "__version__",
    "get_model",
    "improvement_percent",
    "make_context",
    "model_names",
    "run_colocation",
    "run_multitask",
]
