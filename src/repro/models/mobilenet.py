"""MobileNet / MobileNetV2 — the paper's lightweight inference models.

MobileNet (Howard et al. 2017): 13 depthwise-separable units.
MobileNetV2 (Sandler et al. 2018): 17 inverted-residual bottlenecks
(1x1 expand, 3x3 depthwise, 1x1 project) with expansion factor 6.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import (
    conv,
    depthwise_conv,
    fully_connected,
    global_pool,
)

# MobileNetV1: (channels out, stride) per depthwise-separable unit.
_V1_UNITS = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
             (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2),
             (1024, 1)]

# MobileNetV2: (expansion, channels out, repeats, stride of first).
_V2_BLOCKS = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
              (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]


def mobilenet() -> ModelSpec:
    layers: List[LayerSpec] = [
        conv("stem/conv1", 224, 224, 3, 32, k=3, stride=2)]
    cin, resolution = 32, 112
    for index, (cout, stride) in enumerate(_V1_UNITS, start=1):
        layers.append(depthwise_conv(f"unit{index}/dw", resolution,
                                     resolution, cin, k=3, stride=stride))
        resolution //= stride
        layers.append(conv(f"unit{index}/pw", resolution, resolution,
                           cin, cout, k=1))
        cin = cout
    layers.append(global_pool("avgpool", resolution, resolution, cin))
    layers.append(fully_connected("fc1000", cin, 1000))
    return ModelSpec(
        name="MobileNet", layers=layers,
        published_params=4_253_864, published_flops=1.14e9,
    ).normalized()


def mobilenet_v2() -> ModelSpec:
    layers: List[LayerSpec] = [
        conv("stem/conv1", 224, 224, 3, 32, k=3, stride=2)]
    cin, resolution = 32, 112
    for block_index, (expansion, cout, repeats, first_stride) in enumerate(
            _V2_BLOCKS, start=1):
        for repeat in range(1, repeats + 1):
            stride = first_stride if repeat == 1 else 1
            prefix = f"block{block_index}_{repeat}"
            hidden = cin * expansion
            if expansion != 1:
                layers.append(conv(f"{prefix}/expand", resolution,
                                   resolution, cin, hidden, k=1))
            layers.append(depthwise_conv(f"{prefix}/dw", resolution,
                                         resolution, hidden, k=3,
                                         stride=stride))
            resolution //= stride
            layers.append(conv(f"{prefix}/project", resolution, resolution,
                               hidden, cout, k=1))
            cin = cout
    layers.append(conv("head/conv", resolution, resolution, cin, 1280, k=1))
    layers.append(global_pool("avgpool", resolution, resolution, 1280))
    layers.append(fully_connected("fc1000", 1280, 1000))
    return ModelSpec(
        name="MobileNetV2", layers=layers,
        published_params=3_538_984, published_flops=0.61e9,
    ).normalized()
