"""VGG16 / VGG19 — the paper's heavy-weight training workloads.

Exact layer structure (Simonyan & Zisserman 2014): 3x3 convolutions in
five blocks, three fully-connected layers. VGG has no batch norm, so
conv parameter tensors are weight+bias pairs.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import conv, fully_connected, pool

# (block index, channels, conv count) at input resolutions 224/112/56/28/14.
_VGG16_BLOCKS = [(1, 64, 2), (2, 128, 2), (3, 256, 3),
                 (4, 512, 3), (5, 512, 3)]
_VGG19_BLOCKS = [(1, 64, 2), (2, 128, 2), (3, 256, 4),
                 (4, 512, 4), (5, 512, 4)]

_PUBLISHED = {
    "VGG16": (138_357_544, 30.96e9),
    "VGG19": (143_667_240, 39.28e9),
}


def _build_vgg(name: str, blocks) -> ModelSpec:
    layers: List[LayerSpec] = []
    resolution = 224
    cin = 3
    for block_index, channels, count in blocks:
        for conv_index in range(1, count + 1):
            layers.append(conv(
                f"block{block_index}/conv{conv_index}", resolution,
                resolution, cin, channels, k=3, batchnorm=False))
            cin = channels
        layers.append(pool(f"block{block_index}/pool", resolution,
                           resolution, channels))
        resolution //= 2
    layers.append(fully_connected("fc1", 7 * 7 * 512, 4096))
    layers.append(fully_connected("fc2", 4096, 4096))
    layers.append(fully_connected("fc3", 4096, 1000))
    published_params, published_flops = _PUBLISHED[name]
    return ModelSpec(
        name=name, layers=layers,
        published_params=published_params,
        published_flops=published_flops,
    ).normalized()


def vgg16() -> ModelSpec:
    return _build_vgg("VGG16", _VGG16_BLOCKS)


def vgg19() -> ModelSpec:
    return _build_vgg("VGG19", _VGG19_BLOCKS)
