"""NASNetLarge / NASNetMobile — searched architectures.

NASNet cells contain many small separable convolutions, which makes
these the most launch-overhead-bound models of the zoo — NASNetMobile
shows the largest GPU idle fraction in the paper's Figure 3. Cell
internals are approximated with five separable-conv pairs per cell and
normalized to the published totals.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import (
    conv,
    depthwise_conv,
    fully_connected,
    global_pool,
)

# (variant, penultimate filters, cell repeats N, stem filters).
_CONFIGS = {
    "NASNetLarge": dict(params=88_949_818, flops=47.6e9, filters=168,
                        repeats=6, input_res=331),
    "NASNetMobile": dict(params=5_326_716, flops=1.13e9, filters=44,
                         repeats=4, input_res=224),
}


def _cell(layers: List[LayerSpec], name: str, resolution: int, cin: int,
          filters: int, reduction: bool) -> int:
    """One NASNet cell: 5 separable-conv pairs + two 1x1 adjust convs."""
    stride = 2 if reduction else 1
    out_res = resolution // stride
    layers.append(conv(f"{name}/adjust", resolution, resolution, cin,
                       filters, k=1))
    for pair in range(1, 6):
        layers.append(depthwise_conv(f"{name}/sep{pair}/dw", resolution,
                                     resolution, filters, k=3,
                                     stride=stride if pair == 1 else 1))
        layers.append(conv(f"{name}/sep{pair}/pw", out_res, out_res,
                           filters, filters, k=1))
    layers.append(conv(f"{name}/combine", out_res, out_res, 5 * filters,
                       filters * stride, k=1))
    return filters * stride


def _build_nasnet(name: str) -> ModelSpec:
    config = _CONFIGS[name]
    resolution = config["input_res"]
    layers: List[LayerSpec] = [
        conv("stem/conv1", resolution, resolution, 3, 32, k=3, stride=2)]
    resolution //= 2
    cin = 32
    filters = config["filters"]
    # NASNet stems contain two reduction cells that shrink the spatial
    # extent 4x before the first normal cell (331 -> 42 for Large).
    for stem_index in (1, 2):
        cin = _cell(layers, f"stem/reduce{stem_index}", resolution, cin,
                    max(filters // 2, 16), reduction=True)
        resolution //= 2
    for stage in range(1, 4):
        for repeat in range(1, config["repeats"] + 1):
            cin = _cell(layers, f"stage{stage}/cell{repeat}", resolution,
                        cin, filters, reduction=False)
        if stage < 3:
            cin = _cell(layers, f"stage{stage}/reduce", resolution, cin,
                        filters, reduction=True)
            resolution //= 2
            filters *= 2
    layers.append(global_pool("avgpool", resolution, resolution, cin))
    layers.append(fully_connected("fc1000", cin, 1000))
    return ModelSpec(
        name=name, layers=layers,
        published_params=config["params"],
        published_flops=config["flops"],
    ).normalized()


def nasnet_large() -> ModelSpec:
    return _build_nasnet("NASNetLarge")


def nasnet_mobile() -> ModelSpec:
    return _build_nasnet("NASNetMobile")
