"""Shared layer-math helpers for the model zoo.

All cost formulas use multiply-add = 2 FLOPs and fold batch-norm scale
and shift parameters into the convolution they normalize (TF's fused
conv/bn/relu execution).
"""

from __future__ import annotations

from repro.graph.ops import OpKind
from repro.models.base import LayerSpec


def conv(name: str, h: int, w: int, cin: int, cout: int, k: int,
         stride: int = 1, batchnorm: bool = True) -> LayerSpec:
    """A fused Conv2D(+BN+activation) layer at input resolution h x w."""
    out_h, out_w = h // stride, w // stride
    flops = 2.0 * out_h * out_w * cin * cout * k * k
    params = cin * cout * k * k + (2 * cout if batchnorm else cout)
    return LayerSpec(
        name=name, kind=OpKind.CONV2D, flops_per_item=flops,
        params=params, act_elems_per_item=out_h * out_w * cout,
        param_tensors=3 if batchnorm else 2,
        attrs={"k": k, "stride": stride})


def depthwise_conv(name: str, h: int, w: int, channels: int, k: int,
                   stride: int = 1) -> LayerSpec:
    """A fused depthwise Conv2D(+BN+activation) layer."""
    out_h, out_w = h // stride, w // stride
    flops = 2.0 * out_h * out_w * channels * k * k
    params = channels * k * k + 2 * channels
    return LayerSpec(
        name=name, kind=OpKind.DEPTHWISE_CONV, flops_per_item=flops,
        params=params, act_elems_per_item=out_h * out_w * channels,
        param_tensors=3, attrs={"k": k, "stride": stride})


def fully_connected(name: str, cin: int, cout: int) -> LayerSpec:
    return LayerSpec(
        name=name, kind=OpKind.FC, flops_per_item=2.0 * cin * cout,
        params=cin * cout + cout, act_elems_per_item=cout,
        param_tensors=2)


def pool(name: str, h: int, w: int, channels: int,
         stride: int = 2) -> LayerSpec:
    out_h, out_w = h // stride, w // stride
    return LayerSpec(
        name=name, kind=OpKind.POOL,
        flops_per_item=float(h * w * channels),
        params=0, act_elems_per_item=out_h * out_w * channels,
        param_tensors=0)


def global_pool(name: str, h: int, w: int, channels: int) -> LayerSpec:
    return LayerSpec(
        name=name, kind=OpKind.POOL,
        flops_per_item=float(h * w * channels),
        params=0, act_elems_per_item=channels, param_tensors=0)


def elementwise(name: str, elems: int) -> LayerSpec:
    """Residual add / activation over ``elems`` output elements."""
    return LayerSpec(
        name=name, kind=OpKind.ELEMENTWISE, flops_per_item=float(elems),
        params=0, act_elems_per_item=elems, param_tensors=0)
