"""Model zoo: the paper's eleven CNNs plus the NMT recurrent model.

Parameter totals are normalized to the published Keras values, so
stateful sizes (weights + momentum) match the paper's Table 1.
"""

from repro.models.base import (
    FLOAT_BYTES,
    IMAGE_ELEMS,
    TRAINING_ACTIVATION_FACTOR,
    WORKSPACE_BYTES,
    LayerSpec,
    ModelSpec,
)
from repro.models.registry import FIGURE3_MODELS, get_model, model_names

__all__ = [
    "FIGURE3_MODELS",
    "FLOAT_BYTES",
    "IMAGE_ELEMS",
    "LayerSpec",
    "ModelSpec",
    "TRAINING_ACTIVATION_FACTOR",
    "WORKSPACE_BYTES",
    "get_model",
    "model_names",
]
