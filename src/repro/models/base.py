"""Model descriptions: layer lists that expand into computation graphs.

A :class:`ModelSpec` is the reproduction's analogue of a Keras
application: an ordered list of costed layers plus memory accounting.
Parameter totals are normalized to the published Keras values so the
Table 1 state sizes (= weights + momentum = 2x fp32 parameter bytes)
match the paper by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.graph.builder import GraphBuilder, add_input_pipeline
from repro.graph.graph import Graph
from repro.graph.ops import OpDef, OpKind

FLOAT_BYTES = 4
IMAGE_ELEMS = 224 * 224 * 3
# Stored activations + gradients during training, relative to the raw
# forward activation footprint (activations kept for backward, their
# gradients, and allocator fragmentation). Calibrated so the Figure 7
# co-location outcomes match the paper: two ResNet50s (BS=32) fit an
# 11 GB GPU, ResNet50+VGG16 and any VGG16 pair do not.
TRAINING_ACTIVATION_FACTOR = 2.35
# cuDNN-style workspace reserved while a model executes.
WORKSPACE_BYTES = 512 * 1024 * 1024


@dataclass(frozen=True)
class LayerSpec:
    """One forward layer of a model (usually a fused conv/bn/act unit)."""

    name: str
    kind: OpKind
    flops_per_item: float          # forward FLOPs per image/sentence
    params: int                    # parameter count (floats)
    act_elems_per_item: int        # output activation elements per item
    param_tensors: int = 2         # weight tensors (for transfer costing)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def scaled(self, flops_factor: float, params_factor: float) -> "LayerSpec":
        return replace(
            self,
            flops_per_item=self.flops_per_item * flops_factor,
            params=int(round(self.params * params_factor)),
        )


@dataclass
class ModelSpec:
    """A complete, costed model definition."""

    name: str
    layers: List[LayerSpec]
    task: str = "vision"                     # 'vision' | 'seq2seq'
    input_elems_per_item: int = IMAGE_ELEMS
    published_params: Optional[int] = None
    published_flops: Optional[float] = None  # forward FLOPs per item

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def param_count(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        return self.param_count * FLOAT_BYTES

    @property
    def stateful_bytes(self) -> int:
        """Persistent training state: weights + one optimizer slot."""
        return 2 * self.weight_bytes

    @property
    def state_tensor_count(self) -> int:
        """Tensors moved during migration (weights + momentum slots)."""
        return 2 * sum(layer.param_tensors for layer in self.layers
                       if layer.params > 0)

    @property
    def flops_per_item(self) -> float:
        return sum(layer.flops_per_item for layer in self.layers)

    @property
    def activation_bytes_per_item(self) -> int:
        return FLOAT_BYTES * sum(
            layer.act_elems_per_item for layer in self.layers)

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def training_memory_bytes(self, batch: int) -> int:
        """Peak device memory while training with ``batch``."""
        transient = int(self.activation_bytes_per_item * batch
                        * TRAINING_ACTIVATION_FACTOR)
        return self.stateful_bytes + transient + WORKSPACE_BYTES

    def inference_memory_bytes(self, batch: int) -> int:
        """Peak device memory while serving with ``batch``.

        Inference frees activations layer-by-layer; the live set is
        roughly the two widest adjacent layers.
        """
        widest = sorted((layer.act_elems_per_item for layer in self.layers),
                        reverse=True)[:2]
        transient = FLOAT_BYTES * batch * sum(widest) * 2
        return self.weight_bytes + transient + WORKSPACE_BYTES // 2

    # ------------------------------------------------------------------
    # Graph emission
    # ------------------------------------------------------------------
    def build_graph(self, batch: int, training: bool,
                    include_pipeline: bool = True,
                    name: Optional[str] = None,
                    data_workers: int = 32) -> Graph:
        """Expand the model into a computation graph for one session run.

        The graph contains the CPU input pipeline (unless disabled), the
        forward chain, and — when ``training`` — the loss, per-layer
        gradient ops, and per-layer weight updates.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        graph_name = name or f"{self.name.lower()}-{'train' if training else 'infer'}"
        builder = GraphBuilder(graph_name)

        item_bytes = self.input_elems_per_item * FLOAT_BYTES
        if include_pipeline:
            kind = (OpKind.TOKENIZE if self.task == "seq2seq"
                    else OpKind.DECODE_JPEG)
            add_input_pipeline(builder, batch, per_item_kind=kind,
                               item_bytes=item_bytes,
                               data_workers=data_workers)
        else:
            builder.source(OpDef(
                name="input", kind=OpKind.IDENTITY,
                output_bytes=batch * item_bytes, preferred_device="cpu"))

        forward_nodes = []
        prev_bytes = batch * item_bytes
        for layer in self.layers:
            out_bytes = batch * layer.act_elems_per_item * FLOAT_BYTES
            op = OpDef(
                name=f"{self.name}/{layer.name}",
                kind=layer.kind,
                flops=layer.flops_per_item * batch,
                input_bytes=prev_bytes,
                output_bytes=out_bytes,
                params_bytes=layer.params * FLOAT_BYTES,
                preferred_device="gpu",
                attrs={**layer.attrs, "param_tensors": layer.param_tensors},
            )
            forward_nodes.append(builder.chain(op))
            prev_bytes = out_bytes

        if not training:
            builder.chain(OpDef(
                name=f"{self.name}/predictions", kind=OpKind.SOFTMAX,
                flops=batch * 5_000.0, input_bytes=prev_bytes,
                output_bytes=prev_bytes, preferred_device="gpu"))
            return builder.build()

        builder.chain(OpDef(
            name=f"{self.name}/loss", kind=OpKind.LOSS,
            flops=batch * 10_000.0, input_bytes=prev_bytes,
            output_bytes=FLOAT_BYTES, preferred_device="gpu"))

        # Backward chain: gradient twin per forward layer, reverse order.
        for node in reversed(forward_nodes):
            builder.chain(node.op.gradient_op())

        # Weight updates: one apply op per parameterised layer. They all
        # depend on the end of the backward chain (last gradient node).
        tail = builder.cursor
        update_nodes = []
        for layer in self.layers:
            if layer.params == 0:
                continue
            update_op = OpDef(
                name=f"{self.name}/{layer.name}/apply_grad",
                kind=OpKind.APPLY_GRADIENT,
                flops=2.0 * layer.params,
                input_bytes=2 * layer.params * FLOAT_BYTES,
                output_bytes=layer.params * FLOAT_BYTES,
                params_bytes=layer.params * FLOAT_BYTES,
                preferred_device="gpu",
                attrs={"param_tensors": layer.param_tensors},
            )
            builder.branch_from(tail)
            update_nodes.append(builder.chain(update_op))
        builder.join(update_nodes, OpDef(
            name=f"{self.name}/train_op", kind=OpKind.NOOP,
            preferred_device="gpu"))
        return builder.build()

    # ------------------------------------------------------------------
    def normalized(self) -> "ModelSpec":
        """Rescale layers so totals match the published params/FLOPs.

        Structural layer math lands within a few percent of the Keras
        totals; normalization removes that residual so state sizes (and
        therefore Table 1) match the paper exactly.
        """
        params_factor = 1.0
        flops_factor = 1.0
        if self.published_params and self.param_count:
            params_factor = self.published_params / self.param_count
        if self.published_flops and self.flops_per_item:
            flops_factor = self.published_flops / self.flops_per_item
        layers = [layer.scaled(flops_factor, params_factor)
                  for layer in self.layers]
        return replace(self, layers=layers)

    def __repr__(self) -> str:
        return (f"<ModelSpec {self.name} layers={len(self.layers)} "
                f"params={self.param_count / 1e6:.2f}M "
                f"flops={self.flops_per_item / 1e9:.2f}G>")
