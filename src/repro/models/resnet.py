"""ResNet50 — the paper's canonical mid-weight CNN.

Exact bottleneck structure (He et al. 2016): a 7x7 stem, four stages of
[3, 4, 6, 3] bottleneck blocks (1x1 reduce, 3x3, 1x1 expand, projection
shortcut at stage entry), global pool, and a 1000-way classifier.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import (
    conv,
    elementwise,
    fully_connected,
    global_pool,
    pool,
)

# (stage, bottleneck width, output channels, block count, resolution in).
_STAGES = [(2, 64, 256, 3, 56), (3, 128, 512, 4, 56),
           (4, 256, 1024, 6, 28), (5, 512, 2048, 3, 14)]

_PUBLISHED_PARAMS = 25_636_712
_PUBLISHED_FLOPS = 7.72e9


def resnet50() -> ModelSpec:
    layers: List[LayerSpec] = [
        conv("stem/conv1", 224, 224, 3, 64, k=7, stride=2),
        pool("stem/maxpool", 112, 112, 64),
    ]
    cin = 64
    for stage, width, cout, blocks, resolution in _STAGES:
        for block in range(1, blocks + 1):
            stride = 2 if (block == 1 and stage > 2) else 1
            prefix = f"conv{stage}_{block}"
            layers.append(conv(f"{prefix}/reduce", resolution, resolution,
                               cin, width, k=1, stride=stride))
            out_res = resolution // stride
            layers.append(conv(f"{prefix}/conv3x3", out_res, out_res,
                               width, width, k=3))
            layers.append(conv(f"{prefix}/expand", out_res, out_res,
                               width, cout, k=1))
            if block == 1:
                layers.append(conv(f"{prefix}/shortcut", resolution,
                                   resolution, cin, cout, k=1,
                                   stride=stride))
            layers.append(elementwise(f"{prefix}/add_relu",
                                      out_res * out_res * cout))
            cin = cout
            resolution = out_res
    layers.append(global_pool("avgpool", 7, 7, 2048))
    layers.append(fully_connected("fc1000", 2048, 1000))
    return ModelSpec(
        name="ResNet50", layers=layers,
        published_params=_PUBLISHED_PARAMS,
        published_flops=_PUBLISHED_FLOPS,
    ).normalized()
