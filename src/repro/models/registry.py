"""Model registry: look up any of the paper's twelve benchmark models."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.base import ModelSpec
from repro.models.densenet import densenet121, densenet169
from repro.models.inception import inception_resnet_v2, inception_v3
from repro.models.mobilenet import mobilenet, mobilenet_v2
from repro.models.nasnet import nasnet_large, nasnet_mobile
from repro.models.nmt import nmt
from repro.models.resnet import resnet50
from repro.models.vgg import vgg16, vgg19

_FACTORIES: Dict[str, Callable[[], ModelSpec]] = {
    "ResNet50": resnet50,
    "VGG16": vgg16,
    "VGG19": vgg19,
    "DenseNet121": densenet121,
    "DenseNet169": densenet169,
    "InceptionV3": inception_v3,
    "InceptionResNetV2": inception_resnet_v2,
    "MobileNet": mobilenet,
    "MobileNetV2": mobilenet_v2,
    "NASNetLarge": nasnet_large,
    "NASNetMobile": nasnet_mobile,
    "NMT": nmt,
}

_CACHE: Dict[str, ModelSpec] = {}

# The nine CNNs of the paper's Figure 3 study.
FIGURE3_MODELS: List[str] = [
    "ResNet50", "VGG16", "DenseNet121", "DenseNet169",
    "InceptionResNetV2", "InceptionV3", "MobileNet", "MobileNetV2",
    "NASNetMobile",
]


def model_names() -> List[str]:
    return list(_FACTORIES)


def get_model(name: str) -> ModelSpec:
    """Return the (cached, immutable-by-convention) spec for ``name``."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown model {name!r}; available: {model_names()}")
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]
