"""InceptionV3 / InceptionResNetV2 — multi-branch CNNs.

The branch structure follows Szegedy et al. (2016); exact per-branch
channel bookkeeping is approximated with representative widths and then
normalized to the published parameter/FLOP totals (DESIGN.md §2), which
is what the reproduced experiments depend on.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import conv, fully_connected, global_pool, pool


def _stem(layers: List[LayerSpec]) -> None:
    layers.append(conv("stem/conv1", 299, 299, 3, 32, k=3, stride=2))
    layers.append(conv("stem/conv2", 149, 149, 32, 32, k=3))
    layers.append(conv("stem/conv3", 149, 149, 32, 64, k=3))
    layers.append(pool("stem/pool1", 147, 147, 64))
    layers.append(conv("stem/conv4", 73, 73, 64, 80, k=1))
    layers.append(conv("stem/conv5", 73, 73, 80, 192, k=3))
    layers.append(pool("stem/pool2", 71, 71, 192))


def _inception_module(layers: List[LayerSpec], name: str, grid: int,
                      cin: int, widths: List[int]) -> int:
    """A four-branch module; returns the concatenated output channels."""
    b1, b5_reduce, b5, b3_reduce, b3, pool_proj = widths
    layers.append(conv(f"{name}/1x1", grid, grid, cin, b1, k=1))
    layers.append(conv(f"{name}/5x5_reduce", grid, grid, cin, b5_reduce,
                       k=1))
    layers.append(conv(f"{name}/5x5", grid, grid, b5_reduce, b5, k=5))
    layers.append(conv(f"{name}/3x3_reduce", grid, grid, cin, b3_reduce,
                       k=1))
    layers.append(conv(f"{name}/3x3a", grid, grid, b3_reduce, b3, k=3))
    layers.append(conv(f"{name}/3x3b", grid, grid, b3, b3, k=3))
    layers.append(conv(f"{name}/pool_proj", grid, grid, cin, pool_proj,
                       k=1))
    return b1 + b5 + b3 + pool_proj


def inception_v3() -> ModelSpec:
    layers: List[LayerSpec] = []
    _stem(layers)
    cin = 192
    for index in range(1, 4):          # 35x35 modules
        cin = _inception_module(layers, f"mixed35_{index}", 35, cin,
                                [64, 48, 64, 64, 96, 64])
    layers.append(conv("reduce35/3x3", 35, 35, cin, 384, k=3, stride=2))
    cin = 384 + cin
    for index in range(1, 5):          # 17x17 modules (7x1 factorized)
        cin = _inception_module(layers, f"mixed17_{index}", 17, cin,
                                [192, 128, 192, 128, 192, 192])
    layers.append(conv("reduce17/3x3", 17, 17, cin, 320, k=3, stride=2))
    cin = 320 + cin
    for index in range(1, 3):          # 8x8 modules
        cin = _inception_module(layers, f"mixed8_{index}", 8, cin,
                                [320, 384, 384, 448, 384, 192])
    layers.append(global_pool("avgpool", 8, 8, cin))
    layers.append(fully_connected("fc1000", cin, 1000))
    return ModelSpec(
        name="InceptionV3", layers=layers,
        published_params=23_851_784, published_flops=11.42e9,
    ).normalized()


def inception_resnet_v2() -> ModelSpec:
    """Stem + 10x block35 + 20x block17 + 10x block8 residual blocks."""
    layers: List[LayerSpec] = []
    _stem(layers)
    cin = 320
    layers.append(conv("stem/expand", 71, 71, 192, cin, k=3, stride=2))
    for index in range(1, 11):
        prefix = f"block35_{index}"
        layers.append(conv(f"{prefix}/1x1", 35, 35, cin, 32, k=1))
        layers.append(conv(f"{prefix}/3x3a", 35, 35, 32, 48, k=3))
        layers.append(conv(f"{prefix}/3x3b", 35, 35, 48, 64, k=3))
        layers.append(conv(f"{prefix}/project", 35, 35, 144, cin, k=1))
    layers.append(conv("reduceA/3x3", 35, 35, cin, 1088, k=3, stride=2))
    cin = 1088
    for index in range(1, 21):
        prefix = f"block17_{index}"
        layers.append(conv(f"{prefix}/1x1", 17, 17, cin, 128, k=1))
        layers.append(conv(f"{prefix}/7x1", 17, 17, 128, 160, k=3))
        layers.append(conv(f"{prefix}/project", 17, 17, 160, cin, k=1))
    layers.append(conv("reduceB/3x3", 17, 17, cin, 2080, k=3, stride=2))
    cin = 2080
    for index in range(1, 11):
        prefix = f"block8_{index}"
        layers.append(conv(f"{prefix}/1x1", 8, 8, cin, 192, k=1))
        layers.append(conv(f"{prefix}/3x1", 8, 8, 192, 224, k=3))
        layers.append(conv(f"{prefix}/project", 8, 8, 224, cin, k=1))
    layers.append(conv("head/conv", 8, 8, cin, 1536, k=1))
    layers.append(global_pool("avgpool", 8, 8, 1536))
    layers.append(fully_connected("fc1000", 1536, 1000))
    return ModelSpec(
        name="InceptionResNetV2", layers=layers,
        published_params=55_873_736, published_flops=26.36e9,
    ).normalized()
