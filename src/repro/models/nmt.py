"""NMT — GNMT-style LSTM encoder-decoder for the WMT'16 DE-EN task.

The paper uses NMT as its recurrent workload: many small sequential
kernels make its inference "fairly expensive on GPU" (Section 5.2.1)
and extremely sensitive to queueing behind a training job's kernels —
the Figure 6(d) scenario where SwitchFlow wins by up to 19x.

The encoder runs one fused cuDNN-style LSTM op per layer; the decoder
is unrolled step by step (inference has no lookahead), producing the
long tail of small kernels that characterises RNN serving.
"""

from __future__ import annotations

from typing import List

from repro.graph.ops import OpKind
from repro.models.base import LayerSpec, ModelSpec

VOCAB = 32_000
HIDDEN = 1024
ENCODER_LAYERS = 4
DECODER_LAYERS = 4
SRC_LEN = 30          # average WMT'16 source sentence, tokens
TGT_LEN = 30          # decoded target length
BEAM = 4

# Per-step LSTM cell math: 4 gates x (input + recurrent) matmuls.
_CELL_FLOPS = 2.0 * 4 * (HIDDEN * HIDDEN * 2)
_CELL_PARAMS = 4 * (2 * HIDDEN * HIDDEN + HIDDEN)


def nmt() -> ModelSpec:
    layers: List[LayerSpec] = [
        LayerSpec(
            name="embedding", kind=OpKind.EMBEDDING,
            flops_per_item=float(SRC_LEN * HIDDEN),
            params=VOCAB * HIDDEN,
            act_elems_per_item=SRC_LEN * HIDDEN, param_tensors=1),
    ]
    # Encoder: one fused op per layer over the whole source sequence.
    layers.extend(
        LayerSpec(
            name=f"encoder/lstm{layer}", kind=OpKind.LSTM_CELL,
            flops_per_item=_CELL_FLOPS * SRC_LEN,
            params=_CELL_PARAMS,
            act_elems_per_item=SRC_LEN * HIDDEN, param_tensors=3)
        for layer in range(1, ENCODER_LAYERS + 1))
    # Decoder: unrolled; each step is 4 cells + attention + projection.
    for step in range(1, TGT_LEN + 1):
        layers.extend(
            LayerSpec(
                name=f"decoder/t{step}/lstm{layer}", kind=OpKind.LSTM_CELL,
                flops_per_item=_CELL_FLOPS * BEAM,
                params=_CELL_PARAMS if step == 1 else 0,
                act_elems_per_item=BEAM * HIDDEN,
                param_tensors=3 if step == 1 else 0,
                attrs={"shared_weights": step != 1,
                       "recurrent": True})
            for layer in range(1, DECODER_LAYERS + 1))
        layers.append(LayerSpec(
            name=f"decoder/t{step}/attention", kind=OpKind.ATTENTION,
            flops_per_item=2.0 * BEAM * SRC_LEN * HIDDEN * 2,
            params=2 * HIDDEN * HIDDEN if step == 1 else 0,
            act_elems_per_item=BEAM * HIDDEN,
            param_tensors=2 if step == 1 else 0,
            attrs={"recurrent": True}))
        layers.append(LayerSpec(
            name=f"decoder/t{step}/project", kind=OpKind.MATMUL,
            flops_per_item=2.0 * BEAM * HIDDEN * VOCAB,
            params=HIDDEN * VOCAB if step == 1 else 0,
            act_elems_per_item=BEAM * VOCAB,
            param_tensors=1 if step == 1 else 0,
            attrs={"recurrent": True}))
    return ModelSpec(
        name="NMT", layers=layers, task="seq2seq",
        input_elems_per_item=SRC_LEN,
    )
