"""DenseNet121 / DenseNet169 — deep, many-small-kernel CNNs.

Exact dense-block structure (Huang et al. 2017): growth rate 32,
bottleneck layers (1x1 to 4k channels then 3x3 to k), transitions that
halve channel count and resolution. Their high layer counts make them
the dispatch-overhead-sensitive points in Figure 3.
"""

from __future__ import annotations

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.layers import conv, fully_connected, global_pool, pool

_GROWTH = 32

_PUBLISHED = {
    "DenseNet121": (8_062_504, 5.72e9, [6, 12, 24, 16]),
    "DenseNet169": (14_307_880, 6.76e9, [6, 12, 32, 32]),
}


def _build_densenet(name: str) -> ModelSpec:
    published_params, published_flops, block_sizes = _PUBLISHED[name]
    layers: List[LayerSpec] = [
        conv("stem/conv1", 224, 224, 3, 64, k=7, stride=2),
        pool("stem/maxpool", 112, 112, 64),
    ]
    channels = 64
    resolution = 56
    for block_index, block_size in enumerate(block_sizes, start=1):
        for layer_index in range(1, block_size + 1):
            prefix = f"dense{block_index}/layer{layer_index}"
            layers.append(conv(f"{prefix}/bottleneck", resolution,
                               resolution, channels, 4 * _GROWTH, k=1))
            layers.append(conv(f"{prefix}/conv3x3", resolution, resolution,
                               4 * _GROWTH, _GROWTH, k=3))
            channels += _GROWTH
        if block_index < len(block_sizes):
            out_channels = channels // 2
            layers.append(conv(f"transition{block_index}/conv", resolution,
                               resolution, channels, out_channels, k=1))
            layers.append(pool(f"transition{block_index}/pool", resolution,
                               resolution, out_channels))
            channels = out_channels
            resolution //= 2
    layers.append(global_pool("avgpool", resolution, resolution, channels))
    layers.append(fully_connected("fc1000", channels, 1000))
    return ModelSpec(
        name=name, layers=layers,
        published_params=published_params,
        published_flops=published_flops,
    ).normalized()


def densenet121() -> ModelSpec:
    return _build_densenet("DenseNet121")


def densenet169() -> ModelSpec:
    return _build_densenet("DenseNet169")
